package caer

import (
	"testing"

	"caer/internal/comm"
	"caer/internal/pmu"
)

// countSource is a minimal pmu.Source for monitor tests.
type countSource struct {
	misses uint64
}

func (c *countSource) ReadCounter(core int, ev pmu.Event) uint64 {
	if ev == pmu.EventLLCMisses {
		return c.misses
	}
	return 0
}

func TestMonitorPublishesPerPeriodDeltas(t *testing.T) {
	src := &countSource{}
	tab := comm.NewTable(4)
	slot := tab.Register("search", comm.RoleLatency)
	mon := NewMonitor(pmu.New(src, 0), slot)
	if mon.Slot() != slot {
		t.Error("Slot() accessor wrong")
	}

	src.misses = 120
	mon.Tick()
	src.misses = 150
	mon.Tick()
	samples := slot.Samples()
	if len(samples) != 2 || samples[0] != 120 || samples[1] != 30 {
		t.Errorf("published samples = %v, want [120 30]", samples)
	}
}

func TestNewMonitorValidation(t *testing.T) {
	src := &countSource{}
	tab := comm.NewTable(4)
	latSlot := tab.Register("lat", comm.RoleLatency)
	batchSlot := tab.Register("batch", comm.RoleBatch)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil pmu", func() { NewMonitor(nil, latSlot) })
	mustPanic("nil slot", func() { NewMonitor(pmu.New(src, 0), nil) })
	mustPanic("batch slot", func() { NewMonitor(pmu.New(src, 0), batchSlot) })
}
