package caer

import (
	"caer/internal/comm"
	"caer/internal/stats"
)

// RuleDetector implements the Rule-Based heuristic (paper §4.2,
// Algorithm 2), a direct test of the paper's hypothesis: two applications
// are contending iff both are missing heavily in the shared last-level
// cache. It keeps running windowed averages of both applications' LLC
// misses and asserts contention only when *both* averages reach the usage
// threshold; if either application is quiet in the cache it cannot be
// suffering from — or causing — cache contention.
//
// Unlike the burst-shutter, this heuristic is passive: it never perturbs
// the batch application to measure, so its Step directive is always Run.
type RuleDetector struct {
	usageThresh float64
	lWindow     *stats.Window // own (batch) misses
	rWindow     *stats.Window // neighbour (latency-sensitive) misses
	steps       uint64
	verdicts    [2]uint64
}

// NewRuleDetector constructs the heuristic from cfg. It panics on an
// invalid configuration.
func NewRuleDetector(cfg Config) *RuleDetector {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &RuleDetector{
		usageThresh: cfg.UsageThresh,
		lWindow:     stats.NewWindow(cfg.WindowSize),
		rWindow:     stats.NewWindow(cfg.WindowSize),
	}
}

// Name implements Detector.
func (d *RuleDetector) Name() string { return "rule-based" }

// Step implements Detector: one pass of Algorithm 2's loop body. A verdict
// is produced every period — the heuristic needs no multi-period protocol.
func (d *RuleDetector) Step(ownMisses, neighborMisses float64) (comm.Directive, Verdict) {
	d.lWindow.Push(ownMisses)
	d.rWindow.Push(neighborMisses)
	d.steps++

	contending := true
	if d.lWindow.Mean() < d.usageThresh {
		contending = false
	}
	if d.rWindow.Mean() < d.usageThresh {
		contending = false
	}
	if contending {
		d.verdicts[1]++
		return comm.DirectiveRun, VerdictContention
	}
	d.verdicts[0]++
	return comm.DirectiveRun, VerdictNoContention
}

// Reset implements Detector. The windows deliberately survive a reset: the
// running averages of Algorithm 2 are meant to be continuous across
// response phases (only the in-flight verdict state is conceptually
// discarded, and RuleDetector keeps none).
func (d *RuleDetector) Reset() {}

// OwnMean returns the current batch-side window average.
func (d *RuleDetector) OwnMean() float64 { return d.lWindow.Mean() }

// NeighborMean returns the current latency-side window average.
func (d *RuleDetector) NeighborMean() float64 { return d.rWindow.Mean() }

// VerdictCounts returns (noContention, contention) step counts.
func (d *RuleDetector) VerdictCounts() (noContention, contention uint64) {
	return d.verdicts[0], d.verdicts[1]
}
