package caer

import (
	"testing"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/spec"
)

func hybridTestConfig() Config {
	cfg := DefaultConfig()
	cfg.SwitchPoint = 3
	cfg.EndPoint = 6
	cfg.TransientSkip = 0
	cfg.NoiseThresh = 5
	cfg.UsageThresh = 50
	cfg.WindowSize = 2
	return cfg
}

func TestHybridGatesQuietPairsWithoutProbing(t *testing.T) {
	d := NewHybridDetector(hybridTestConfig())
	for i := 0; i < 50; i++ {
		dir, v := d.Step(5, 5) // both quiet
		if v != VerdictNoContention {
			t.Fatalf("step %d: verdict %v, want no-contention", i, v)
		}
		if dir != comm.DirectiveRun {
			t.Fatalf("step %d: quiet pair got directive %v", i, dir)
		}
	}
	gated, probes := d.GateStats()
	if gated != 50 || probes != 0 {
		t.Errorf("gate stats = %d gated, %d probes; want 50, 0", gated, probes)
	}
}

func TestHybridConfirmsRealContention(t *testing.T) {
	d := NewHybridDetector(hybridTestConfig())
	// Warm the rule windows with heavy values so the gate fires.
	var v Verdict
	var dirs []comm.Directive
	// Scripted: heavy on both sides; during the confirmation shutter the
	// neighbour's misses drop (batch halted) then spike in the burst —
	// genuine contention.
	neighbor := []float64{
		500,    // gate fires here; shutter cycle position 0 (pre-cycle sample)
		80, 80, // shutter closed: neighbour recovers
		500, 510, // burst: misses spike
		505, // cycle end -> verdict
	}
	for _, n := range neighbor {
		var dir comm.Directive
		dir, v = d.Step(400, n)
		dirs = append(dirs, dir)
	}
	if v != VerdictContention {
		t.Fatalf("verdict = %v, want contention confirmed", v)
	}
	// The shutter protocol actually halted the batch while measuring: the
	// pause directives issued at steps 0 and 1 cover the periods sampled
	// at window positions 1 and 2 (the steady span).
	if dirs[0] != comm.DirectivePause || dirs[1] != comm.DirectivePause {
		t.Errorf("confirmation did not close the shutter: %v", dirs)
	}
	_, probes := d.GateStats()
	if probes != 1 {
		t.Errorf("probes = %d, want 1", probes)
	}
}

func TestHybridRefutesIntrinsicMisses(t *testing.T) {
	d := NewHybridDetector(hybridTestConfig())
	// Both heavy, but the neighbour's misses do NOT react to the batch
	// (an intrinsic streamer): the shutter confirmation must refute. Stop
	// at the first completed verdict (the gate immediately re-probes on
	// further heavy samples).
	v := VerdictPending
	for i := 0; i < 6 && v == VerdictPending; i++ {
		_, v = d.Step(400, 500)
	}
	if v != VerdictNoContention {
		t.Fatalf("verdict = %v, want the probe to refute intrinsic misses", v)
	}
}

func TestHybridResetClearsConfirmation(t *testing.T) {
	d := NewHybridDetector(hybridTestConfig())
	d.Step(400, 500) // enters confirmation
	d.Reset()
	// The rule's running windows survive resets (Algorithm 2's averages
	// are continuous), so the stale heavy sample re-fires the gate once;
	// an in-flight probe over quiet samples then refutes, and once the
	// windows have drained the gate resolves quiet pairs instantly.
	v := VerdictPending
	for i := 0; i < 6 && v == VerdictPending; i++ {
		_, v = d.Step(0, 0)
	}
	if v != VerdictNoContention {
		t.Fatalf("post-reset probe verdict = %v", v)
	}
	gatedBefore, _ := d.GateStats()
	if _, v := d.Step(0, 0); v != VerdictNoContention {
		t.Errorf("drained-window verdict = %v", v)
	}
	gatedAfter, _ := d.GateStats()
	if gatedAfter != gatedBefore+1 {
		t.Error("quiet pair not resolved by the gate after windows drained")
	}
}

func TestHybridName(t *testing.T) {
	if NewHybridDetector(DefaultConfig()).Name() != "hybrid(rule-gate+shutter-confirm)" {
		t.Error("name wrong")
	}
	if HeuristicHybrid.String() != "hybrid" {
		t.Error("kind string wrong")
	}
	if HeuristicHybrid.NewDetector(DefaultConfig()).Name() == "" {
		t.Error("factory broken")
	}
	if HeuristicHybrid.NewResponder(DefaultConfig()).Name() != "red-light-green-light(10)" {
		t.Error("responder pairing wrong")
	}
}

func TestHybridEndToEndBeatsRuleOnStreamerPair(t *testing.T) {
	// libquantum's misses are intrinsic: the rule heuristic locks the
	// batch out (~0 utilization), while the hybrid's confirmation probes
	// refute and keep the batch running substantially more.
	duty := func(kind HeuristicKind) float64 {
		m := machine.New(machine.Config{Cores: 2})
		rt := NewRuntime(m, kind, DefaultConfig())
		libq, _ := spec.ByName("libquantum")
		rt.AddLatency("libquantum", 0, libq.Batch().NewProcess(0, 11))
		rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, 12))
		for i := 0; i < 400; i++ {
			rt.Step()
		}
		return m.Core(1).Utilization()
	}
	rule := duty(HeuristicRule)
	hybrid := duty(HeuristicHybrid)
	if hybrid < rule+0.2 {
		t.Errorf("hybrid duty %.3f not clearly above rule %.3f on an intrinsic streamer", hybrid, rule)
	}
}
