package caer

import (
	"testing"

	"caer/internal/comm"
)

// scriptDetector yields a pre-programmed sequence of (directive, verdict)
// pairs and records inputs.
type scriptDetector struct {
	dirs     []comm.Directive
	verdicts []Verdict
	i        int
	resets   int
	seenOwn  []float64
	seenNbr  []float64
}

func (s *scriptDetector) Name() string { return "script" }

func (s *scriptDetector) Step(own, nbr float64) (comm.Directive, Verdict) {
	s.seenOwn = append(s.seenOwn, own)
	s.seenNbr = append(s.seenNbr, nbr)
	d, v := s.dirs[s.i], s.verdicts[s.i]
	s.i = (s.i + 1) % len(s.dirs)
	return d, v
}

func (s *scriptDetector) Reset() { s.resets++ }

// scriptResponder returns a fixed reaction and records calls.
type scriptResponder struct {
	dir      comm.Directive
	length   int
	holdDir  comm.Directive
	release  bool
	reacts   int
	holds    int
	verdicts []bool
}

func (s *scriptResponder) Name() string { return "script" }

func (s *scriptResponder) React(c bool, v View) (comm.Directive, int) {
	s.reacts++
	s.verdicts = append(s.verdicts, c)
	return s.dir, s.length
}

func (s *scriptResponder) Hold(v View) (comm.Directive, bool) {
	s.holds++
	return s.holdDir, s.release
}

func (s *scriptResponder) Reset() {}

func newTestSlots(t *testing.T) (own *comm.Slot, nbr *comm.Slot) {
	t.Helper()
	tab := comm.NewTable(8)
	nbr = tab.Register("lat", comm.RoleLatency)
	own = tab.Register("batch", comm.RoleBatch)
	return own, nbr
}

func TestNewEngineValidation(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{dirs: []comm.Directive{comm.DirectiveRun}, verdicts: []Verdict{VerdictPending}}
	resp := &scriptResponder{dir: comm.DirectiveRun, length: 1}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil detector", func() { NewEngine(nil, resp, own, []*comm.Slot{nbr}) })
	mustPanic("nil responder", func() { NewEngine(det, nil, own, []*comm.Slot{nbr}) })
	mustPanic("latency own slot", func() { NewEngine(det, resp, nbr, []*comm.Slot{nbr}) })
	mustPanic("no neighbours", func() { NewEngine(det, resp, own, nil) })
	mustPanic("batch neighbour", func() { NewEngine(det, resp, own, []*comm.Slot{own}) })
}

func TestEnginePendingVerdictFollowsDetectorDirective(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectivePause, comm.DirectiveRun},
		verdicts: []Verdict{VerdictPending, VerdictPending},
	}
	resp := &scriptResponder{dir: comm.DirectiveRun, length: 1}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})

	nbr.Publish(50)
	if d := e.Tick(7); d != comm.DirectivePause {
		t.Errorf("tick 1 directive = %v, want pause (detector probing)", d)
	}
	nbr.Publish(60)
	if d := e.Tick(8); d != comm.DirectiveRun {
		t.Errorf("tick 2 directive = %v, want run", d)
	}
	if resp.reacts != 0 {
		t.Error("responder consulted during pending detection")
	}
	// The engine fed the detector its own sample and the neighbour's last
	// published sample.
	if det.seenOwn[0] != 7 || det.seenNbr[0] != 50 || det.seenNbr[1] != 60 {
		t.Errorf("detector inputs = own %v nbr %v", det.seenOwn, det.seenNbr)
	}
	// The engine published its own samples to the table.
	if own.Published() != 2 || own.LastSample() != 8 {
		t.Errorf("own slot published=%d last=%v", own.Published(), own.LastSample())
	}
}

func TestEngineHoldPhaseLifecycle(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectiveRun},
		verdicts: []Verdict{VerdictContention},
	}
	resp := &scriptResponder{dir: comm.DirectivePause, length: 3, holdDir: comm.DirectivePause}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})

	tick := func() comm.Directive {
		nbr.Publish(100)
		return e.Tick(100)
	}
	// Verdict tick: React -> pause for 3 periods total.
	if d := tick(); d != comm.DirectivePause {
		t.Fatalf("verdict tick directive = %v", d)
	}
	if det.resets != 1 {
		t.Errorf("detector resets after verdict = %d, want 1", det.resets)
	}
	// Two hold ticks follow (3 periods total including the verdict tick).
	if d := tick(); d != comm.DirectivePause {
		t.Error("hold tick 1 not paused")
	}
	if d := tick(); d != comm.DirectivePause {
		t.Error("hold tick 2 not paused")
	}
	if resp.holds != 2 {
		t.Errorf("holds = %d, want 2", resp.holds)
	}
	// Next tick is detection again (script yields another verdict).
	tick()
	if resp.reacts != 2 {
		t.Errorf("reacts = %d, want 2 (detection resumed)", resp.reacts)
	}
	st := e.Stats()
	if st.Periods != 4 || st.CPositive != 2 || st.HoldTicks != 2 || st.DetectionTicks != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.PausedPeriods != 4 {
		t.Errorf("paused periods = %d, want 4", st.PausedPeriods)
	}
}

func TestEngineEarlyReleaseFromHold(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectiveRun},
		verdicts: []Verdict{VerdictContention},
	}
	resp := &scriptResponder{dir: comm.DirectivePause, length: 100, holdDir: comm.DirectiveRun, release: true}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})

	nbr.Publish(1)
	e.Tick(1) // verdict -> enter hold(99)
	nbr.Publish(1)
	if d := e.Tick(1); d != comm.DirectiveRun {
		t.Errorf("released hold directive = %v, want run", d)
	}
	// Detection resumed: next tick hits the detector again.
	nbr.Publish(1)
	e.Tick(1)
	if resp.reacts != 2 {
		t.Errorf("reacts = %d, want 2 (early release resumed detection)", resp.reacts)
	}
}

func TestEngineLengthOneSkipsHold(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectiveRun},
		verdicts: []Verdict{VerdictNoContention},
	}
	resp := &scriptResponder{dir: comm.DirectiveRun, length: 1}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})
	for i := 0; i < 5; i++ {
		nbr.Publish(1)
		e.Tick(1)
	}
	if resp.holds != 0 {
		t.Errorf("holds = %d, want 0 for length-1 reactions", resp.holds)
	}
	if resp.reacts != 5 {
		t.Errorf("reacts = %d, want 5", resp.reacts)
	}
}

func TestEngineRejectsZeroHoldLength(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectiveRun},
		verdicts: []Verdict{VerdictContention},
	}
	resp := &scriptResponder{dir: comm.DirectiveRun, length: 0}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})
	nbr.Publish(1)
	defer func() {
		if recover() == nil {
			t.Error("zero hold length did not panic")
		}
	}()
	e.Tick(1)
}

func TestEngineViewAggregatesNeighbours(t *testing.T) {
	tab := comm.NewTable(4)
	n1 := tab.Register("lat1", comm.RoleLatency)
	n2 := tab.Register("lat2", comm.RoleLatency)
	own := tab.Register("batch", comm.RoleBatch)
	det := &scriptDetector{dirs: []comm.Directive{comm.DirectiveRun}, verdicts: []Verdict{VerdictPending}}
	resp := &scriptResponder{dir: comm.DirectiveRun, length: 1}
	e := NewEngine(det, resp, own, []*comm.Slot{n1, n2})

	n1.Publish(10)
	n2.Publish(30)
	e.Tick(5)
	if got := e.LastNeighbor(); got != 40 {
		t.Errorf("LastNeighbor = %v, want 40 (sum)", got)
	}
	if got := e.NeighborMean(); got != 40 {
		t.Errorf("NeighborMean = %v, want 40", got)
	}
	if got := e.OwnMean(); got != 5 {
		t.Errorf("OwnMean = %v, want 5", got)
	}
	if det.seenNbr[0] != 40 {
		t.Errorf("detector neighbour input = %v, want aggregated 40", det.seenNbr[0])
	}
}

func TestEngineRecordsDirectiveInTable(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{dirs: []comm.Directive{comm.DirectivePause}, verdicts: []Verdict{VerdictPending}}
	resp := &scriptResponder{dir: comm.DirectiveRun, length: 1}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})
	nbr.Publish(1)
	e.Tick(1)
	if own.Directive() != comm.DirectivePause {
		t.Error("engine directive not recorded in communication table")
	}
	if e.Directive() != comm.DirectivePause {
		t.Error("Directive() accessor stale")
	}
	if e.Detector() != det || e.Responder() != resp {
		t.Error("accessors returned wrong components")
	}
}
