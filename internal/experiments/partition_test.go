package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPartitionSuite is the response-family acceptance check (DESIGN.md
// §16): against capacity-thief co-runners, the partition response must
// strictly beat both pure-throttling responses on latency-app QoS
// degradation while finishing the batch set earlier, at equal admitted
// throughput — the suite's Check() is the CI gate, so it is asserted
// directly here too.
func TestPartitionSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("partition regime suite is slow; skipped in -short")
	}
	r := PartitionSuite(42, true)

	if r.BaselinePeriods == 0 {
		t.Fatal("baseline latency run never completed")
	}
	if err := r.Check(); err != nil {
		t.Fatalf("suite gate: %v", err)
	}

	part, ok := r.Config("partition")
	if !ok {
		t.Fatal("missing partition row")
	}
	// Pure partitioning never pauses a core outright: its duty must exceed
	// every throttling row's (the batch side keeps running, just confined).
	for _, name := range []string{"red-light-green-light", "soft-lock"} {
		thr, ok := r.Config(name)
		if !ok {
			t.Fatalf("missing %s row", name)
		}
		if part.BatchDuty <= thr.BatchDuty {
			t.Errorf("partition batch duty %.4f not above %s at %.4f",
				part.BatchDuty, name, thr.BatchDuty)
		}
	}
	// The hybrid row throttles on top of partitioning, so it can never
	// finish the batch sooner than pure partitioning.
	if hy, ok := r.Config("hybrid"); ok {
		if hy.BatchMakespan < part.BatchMakespan {
			t.Errorf("hybrid makespan %d below pure partition %d", hy.BatchMakespan, part.BatchMakespan)
		}
	} else {
		t.Error("missing hybrid row")
	}
	for _, c := range r.Configs {
		if c.QoSDegradation < 1 {
			t.Errorf("%s: QoS degradation %.4f below 1 (faster than jobs-free baseline?)", c.Name, c.QoSDegradation)
		}
		if c.CPositive == 0 {
			t.Errorf("%s: no contention verdicts — the scenario exercised nothing", c.Name)
		}
	}

	// Determinism per seed.
	r2 := PartitionSuite(42, true)
	for i, c := range r.Configs {
		q := r2.Configs[i]
		if c != q && len(r2.Configs) == len(r.Configs) {
			t.Errorf("seed 42 not deterministic for %s: %+v vs %+v", c.Name, c, q)
		}
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"partition", "soft-lock", "red-light-green-light", "hybrid"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table missing %s row:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded PartitionRegime
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded.BaselinePeriods != r.BaselinePeriods || len(decoded.Configs) != len(r.Configs) {
		t.Errorf("artifact round-trip mismatch: %+v", decoded)
	}
}

// TestPartitionByteIdenticalAcrossWorkers extends the determinism contract
// to the partition response: resizing per-owner way masks mid-run must not
// perturb the parallel domain stepper, so the same seed yields a
// byte-identical BENCH_partition.json at Workers=1 and Workers=4. Runs
// under -race via check.sh, which doubles as the data-race audit of the
// resize path.
func TestPartitionByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the partition regime suite twice; skipped in -short")
	}
	const seed = 11
	serial := PartitionSuiteWorkers(seed, true, 1)
	pooled := PartitionSuiteWorkers(seed, true, 4)

	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatalf("serial WriteJSON: %v", err)
	}
	if err := pooled.WriteJSON(&b); err != nil {
		t.Fatalf("pooled WriteJSON: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("BENCH_partition.json differs between Workers=1 and Workers=4:\n--- serial ---\n%s\n--- pooled ---\n%s",
			a.String(), b.String())
	}
}
