package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"caer/internal/caer"
	"caer/internal/fleet"
	"caer/internal/report"
	"caer/internal/sched"
	"caer/internal/slo"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

// SLOPolicyResult is one placement policy's outcome in the SLO regime
// suite: the FleetSuite comparison re-run with every node's SLO engine
// armed, adding the alert trajectory to the usual QoS columns.
type SLOPolicyResult struct {
	Name string

	Ticks      int
	Arrivals   int
	Completed  int
	Throughput float64

	// Sensitive-service QoS (periods), fleet-wide.
	Requests int
	P50, P99 float64

	// MachineDispatches is the placement signature; the outage row must
	// reproduce least-pressure's exactly (the staleness-fallback pin).
	MachineDispatches []int

	// AlertsFired sums caer_slo_alerts_total across machines — completed
	// firing episodes of the per-node latency objectives.
	AlertsFired int
	// FreshDecisions counts placement decisions taken on a fresh scraped
	// view (0 under least-pressure, which never scrapes; 0 under the
	// forced outage, which never lands a scrape).
	FreshDecisions int
}

// SLOWindow is one seeded violation: a scripted monitor outage over
// [Start, End) ticks of the alert battery. With the CAER-M monitor down,
// every resident engine's watchdog fails open after Caer.WatchdogPeriods,
// so the node's degraded-ticks counter burns through its budget objective
// for the rest of the window — the ground truth the alert engine must
// flag exactly once.
type SLOWindow struct {
	Start, End int
}

// SLOEpisodeResult is one observed firing episode from the battery
// replay, joined against the seeded window that explains it (-1 = none:
// a false positive).
type SLOEpisodeResult struct {
	Objective  string
	Start, End uint64
	PeakBurn   float64
	Window     int
}

// SLOBattery is the seeded-violation half of the suite: a single-machine
// fleet under steady batch load whose CAER-M monitor is forced down over
// known windows. Every window must raise exactly one firing alert on the
// degraded-ticks budget objective and nothing else may fire.
type SLOBattery struct {
	Horizon  int
	Windows  []SLOWindow
	Episodes []SLOEpisodeResult
	// AlertsFired is the live engine's completed-episode count (the
	// caer_slo_alerts_total sum); FalsePositives counts replay episodes
	// with no seeded window.
	AlertsFired    int
	FalsePositives int
}

// SLORegime is the SLO regime suite's result: the FleetSuite cluster
// compared across least-pressure, telemetry-fed, and telemetry-outage
// placement with per-node SLO engines armed, plus the seeded-violation
// alert battery that pins the burn-rate state machine end to end.
type SLORegime struct {
	Machines   int
	Sensitive  string
	Background string
	Curve      string
	Rate       float64
	Horizon    int
	Seed       int64

	// Quantile/Bound/Window declare the per-node latency objective of the
	// policy rows ("p<Quantile> of request latency < Bound periods").
	Quantile float64
	Bound    float64
	Window   int

	Policies []SLOPolicyResult
	Battery  SLOBattery

	// Doctor bundle bytes (battery run), written by WriteDoctorBundle and
	// deliberately unexported so the JSON artifact stays a pure result.
	series, events, trace, objectives []byte
}

// SLOSuite runs the SLO regime suite (DESIGN.md §15).
func SLOSuite(seed int64, quick bool) SLORegime {
	return SLOSuiteWorkers(seed, quick, 1)
}

// sumCounter scrapes every node registry and sums the named counter
// family's values.
func sumCounter(c *fleet.Cluster, name string) (total float64) {
	var buf bytes.Buffer
	for _, n := range c.Nodes() {
		buf.Reset()
		if err := n.Registry().WritePrometheus(&buf); err != nil {
			panic(err)
		}
		ms, err := telemetry.ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			panic(err)
		}
		for _, m := range ms {
			if m.Name == name {
				total += m.Value
			}
		}
	}
	return total
}

// SLOSuiteWorkers is SLOSuite with every machine's worker pool sized to
// workers. As with the fleet suite, workers is not recorded in the
// artifact: byte-comparing BENCH_slo.json across worker counts pins the
// determinism contract for the whole telemetry data plane (scrape →
// parse → place) and the SLO engine.
func SLOSuiteWorkers(seed int64, quick bool, workers int) SLORegime {
	scale := uint64(1)
	if quick {
		scale = 4
	}
	mcf := mustProfile("mcf")
	namd := mustProfile("namd")
	lbm := mustProfile("lbm")
	povray := mustProfile("povray")
	mcf.Exec.Instructions = 1_000_000 / scale
	namd.Exec.Instructions = 1_000_000 / scale
	lbm.Exec.Instructions = 400_000 / scale
	povray.Exec.Instructions = 400_000 / scale

	mix := []spec.Profile{lbm, lbm, povray, lbm}
	traffic := fleet.Traffic{
		Curve:   fleet.CurveDiurnal,
		Rate:    0.033 * float64(scale),
		Horizon: 4000 / int(scale),
		Mix:     mix,
	}

	// Same heterogeneous cluster as the fleet suite: two small sensitive
	// machines (mcf open-loop service), two big background ones (namd).
	const machines = 4
	specs := make([]fleet.MachineSpec, machines)
	for k := range specs {
		svc := fleet.Service{Profile: mcf, Core: 0, Relaunch: true}
		specs[k] = fleet.MachineSpec{Cores: 4, Domains: 2, Workers: workers, Services: []fleet.Service{svc}}
		if k >= machines/2 {
			svc.Profile = namd
			specs[k] = fleet.MachineSpec{Cores: 8, Domains: 2, Workers: workers, Services: []fleet.Service{svc}}
		}
	}

	sloCfg := fleet.SLOConfig{
		LatencyQuantile: 0.99, LatencyBound: 1024, Window: 64,
	}
	out := SLORegime{
		Machines:   machines,
		Sensitive:  spec.ShortName(mcf.Name),
		Background: spec.ShortName(namd.Name),
		Curve:      traffic.Curve.String(),
		Rate:       traffic.Rate,
		Horizon:    traffic.Horizon,
		Seed:       seed,
		Quantile:   sloCfg.LatencyQuantile,
		Bound:      sloCfg.LatencyBound,
		Window:     sloCfg.Window,
	}

	caerCfg := caer.DefaultConfig()
	caerCfg.UsageThresh = 800
	schedCfg := sched.Config{
		Policy:         sched.PolicyContentionAware,
		Heuristic:      caer.HeuristicRule,
		Caer:           caerCfg,
		PressureScale:  caer.DefaultConfig().UsageThresh,
		AdmitThreshold: 100,
	}

	type rowConfig struct {
		name    string
		policy  fleet.Policy
		scraper fleet.Scraper
	}
	rows := []rowConfig{
		{name: "least-pressure", policy: fleet.PolicyLeastPressure},
		{name: "telemetry", policy: fleet.PolicyTelemetry},
		{name: "telemetry-outage", policy: fleet.PolicyTelemetry,
			scraper: fleet.ScraperFunc(func(int, io.Writer) error {
				return fmt.Errorf("forced scrape outage")
			})},
	}
	for _, row := range rows {
		c := fleet.New(fleet.Config{
			Machines:     specs,
			Sched:        schedCfg,
			Policy:       row.policy,
			Traffic:      traffic,
			Seed:         seed,
			MaxPeriods:   400_000,
			SLO:          sloCfg,
			ScrapePeriod: 4,
			Scraper:      row.scraper,
		})
		c.Run()
		rep := c.Report()
		lat := rep.MergedLatency(out.Sensitive)
		pr := SLOPolicyResult{
			Name:        row.name,
			Ticks:       rep.Ticks,
			Arrivals:    rep.Arrivals,
			Completed:   rep.Completed,
			Throughput:  rep.Throughput(),
			Requests:    int(lat.N()),
			AlertsFired: int(sumCounter(c, "caer_slo_alerts_total")),
		}
		if lat.N() > 0 {
			pr.P50 = lat.Quantile(0.5)
			pr.P99 = lat.Quantile(0.99)
		}
		for _, n := range rep.Nodes {
			pr.MachineDispatches = append(pr.MachineDispatches, n.Dispatches)
		}
		for _, d := range c.Decisions() {
			if d.Fresh {
				pr.FreshDecisions++
			}
		}
		out.Policies = append(out.Policies, pr)
	}

	out.runBattery(seed, scale, workers, schedCfg)
	return out
}

// batteryObjectives is the battery's armed objective set: the seeded
// degraded-ticks budget plus a latency objective with a bound far above
// anything the lightly loaded battery machine produces — armed precisely
// so "zero false positives" is a claim about more than one objective.
func batteryObjectives() []slo.Objective {
	return []slo.Objective{
		{
			Name:   "degraded-budget",
			Metric: "caer_fleet_node_degraded_ticks_total",
			Kind:   slo.KindBudget, Budget: 0.25,
			Window: 64,
		},
		{
			Name:    "latency-mcf",
			Metric:  "caer_fleet_request_latency_periods",
			LabelKV: []string{"service", "mcf"},
			Kind:    slo.KindQuantile, Quantile: 0.99, Bound: 3500,
			Window: 64,
		},
	}
}

// runBattery runs the seeded-violation battery and fills out.Battery plus
// the doctor bundle bytes: a single 4-core machine hosting the sensitive
// mcf service under steady batch load, with the CAER-M monitor forced
// down over three known windows. Replaying the node's series dump must
// find exactly one firing episode per window and nothing else.
func (out *SLORegime) runBattery(seed int64, scale uint64, workers int, schedCfg sched.Config) {
	mcf := mustProfile("mcf")
	lbm := mustProfile("lbm")
	povray := mustProfile("povray")
	mcf.Exec.Instructions = 1_000_000 / scale
	lbm.Exec.Instructions = 400_000 / scale
	povray.Exec.Instructions = 400_000 / scale

	windows := []SLOWindow{{600, 1000}, {1600, 2000}, {2600, 3000}}
	const horizon = 3600

	var selfOps atomic.Uint64
	spans := telemetry.NewSpanRecorder(1<<18, &selfOps)
	c := fleet.New(fleet.Config{
		Machines: []fleet.MachineSpec{{
			Cores: 4, Domains: 2, Workers: workers,
			Services: []fleet.Service{{Profile: mcf, Core: 0, Relaunch: true}},
		}},
		Sched:  schedCfg,
		Policy: fleet.PolicyTelemetry,
		// Saturating load: the offered core-demand (rate x job length) sits
		// well above the 3 batch cores at either scale, so the sensitive
		// domain's spare core always hosts an engine-managed job — the
		// engine whose watchdog the seeded monitor outages trip.
		Traffic: fleet.Traffic{
			Curve: fleet.CurveConstant, Rate: 0.0375 * float64(scale), Horizon: horizon,
			Mix: []spec.Profile{lbm, povray},
		},
		Seed:       seed,
		MaxPeriods: 100_000,
		SLO: fleet.SLOConfig{
			LatencyQuantile: 0.99, LatencyBound: 3500,
			DegradedBudget: 0.25, Window: 64,
		},
		SeriesCapacity: 1 << 15, // retain the whole run for the replay
		ScrapePeriod:   4,
		Spans:          spans,
	})
	node := c.Nodes()[0]
	mon := node.Sched().Monitor(0)
	for !c.Done() && c.Ticks() < 100_000 {
		t := c.Ticks()
		for _, w := range windows {
			if t == w.Start {
				mon.SetDown(true)
			}
			if t == w.End {
				mon.SetDown(false)
			}
		}
		c.Tick()
	}

	// Dump the series and replay it — the doctor's exact path: the
	// parsed dump, not the live store, drives the episode accounting.
	var seriesBuf bytes.Buffer
	if err := node.Series().WriteDump(&seriesBuf); err != nil {
		panic(err)
	}
	parsed, err := telemetry.ParseSeries(bytes.NewReader(seriesBuf.Bytes()))
	if err != nil {
		panic(err)
	}
	objs := batteryObjectives()
	reports := slo.Replay(parsed, objs)

	b := SLOBattery{
		Horizon:     horizon,
		Windows:     windows,
		AlertsFired: int(sumCounter(c, "caer_slo_alerts_total")),
	}
	// A window explains an episode when the episode starts inside it or
	// in its decay tail (one slow window past the end, while the burn
	// drains back under the threshold).
	explains := func(w SLOWindow, ep slo.Episode) bool {
		return ep.Start >= uint64(w.Start) && ep.Start < uint64(w.End+64)
	}
	for _, r := range reports {
		for _, ep := range r.Episodes {
			res := SLOEpisodeResult{
				Objective: r.Objective.Name,
				Start:     ep.Start, End: ep.End,
				PeakBurn: ep.PeakBurn,
				Window:   -1,
			}
			for wi, w := range windows {
				if r.Objective.Name == "degraded-budget" && explains(w, ep) {
					res.Window = wi
					break
				}
			}
			if res.Window == -1 {
				b.FalsePositives++
			}
			b.Episodes = append(b.Episodes, res)
		}
	}
	out.Battery = b

	// Doctor bundle: series + decision logs + span trace + objectives.
	var eventsBuf, traceBuf, objBuf bytes.Buffer
	if err := c.WriteEvents(&eventsBuf); err != nil {
		panic(err)
	}
	if err := spans.WriteChrome(&traceBuf); err != nil {
		panic(err)
	}
	enc := json.NewEncoder(&objBuf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(objs); err != nil {
		panic(err)
	}
	out.series = seriesBuf.Bytes()
	out.events = eventsBuf.Bytes()
	out.trace = traceBuf.Bytes()
	out.objectives = objBuf.Bytes()
}

// Check enforces the SLO regime gates: telemetry-fed placement matches or
// beats least-pressure on sensitive p99 at equal admitted throughput, the
// forced scrape outage reproduces least-pressure exactly, and the alert
// battery flags every seeded violation exactly once with zero false
// positives.
func (r SLORegime) Check() error {
	find := func(name string) *SLOPolicyResult {
		for i := range r.Policies {
			if r.Policies[i].Name == name {
				return &r.Policies[i]
			}
		}
		return nil
	}
	lp, tel, outage := find("least-pressure"), find("telemetry"), find("telemetry-outage")
	if lp == nil || tel == nil || outage == nil {
		return fmt.Errorf("slo regime missing a policy row")
	}
	for _, p := range []*SLOPolicyResult{lp, tel, outage} {
		if p.Completed != p.Arrivals {
			return fmt.Errorf("%s did not drain: %d/%d", p.Name, p.Completed, p.Arrivals)
		}
	}
	if tel.Completed != lp.Completed {
		return fmt.Errorf("admitted throughput unequal: telemetry %d, least-pressure %d",
			tel.Completed, lp.Completed)
	}
	if tel.Requests == 0 || lp.Requests == 0 {
		return fmt.Errorf("sensitive service recorded no requests")
	}
	if tel.P99 > lp.P99 {
		return fmt.Errorf("telemetry p99 %.0f exceeds least-pressure p99 %.0f", tel.P99, lp.P99)
	}
	if tel.FreshDecisions == 0 {
		return fmt.Errorf("telemetry row never placed on a fresh scraped view")
	}
	if outage.FreshDecisions != 0 {
		return fmt.Errorf("outage row placed %d decisions on supposedly fresh views", outage.FreshDecisions)
	}
	if fmt.Sprint(outage.MachineDispatches) != fmt.Sprint(lp.MachineDispatches) ||
		outage.P99 != lp.P99 || outage.P50 != lp.P50 || outage.Completed != lp.Completed {
		return fmt.Errorf("scrape outage did not degrade to least-pressure: dispatches %v vs %v, p99 %.0f vs %.0f",
			outage.MachineDispatches, lp.MachineDispatches, outage.P99, lp.P99)
	}

	b := r.Battery
	if b.FalsePositives != 0 {
		return fmt.Errorf("alert battery raised %d false positives", b.FalsePositives)
	}
	if len(b.Episodes) != len(b.Windows) {
		return fmt.Errorf("alert battery raised %d episodes for %d seeded violations",
			len(b.Episodes), len(b.Windows))
	}
	covered := make(map[int]int)
	for _, ep := range b.Episodes {
		covered[ep.Window]++
	}
	for wi := range b.Windows {
		if covered[wi] != 1 {
			return fmt.Errorf("seeded violation %d raised %d firing alerts, want exactly 1", wi, covered[wi])
		}
	}
	if b.AlertsFired != len(b.Windows) {
		return fmt.Errorf("live engine fired %d alerts for %d seeded violations", b.AlertsFired, len(b.Windows))
	}
	return nil
}

// Table returns the policy comparison as a table.
func (r SLORegime) Table() *report.Table {
	t := report.NewTable("policy", "completed", "jobs/kperiod",
		"svc_p50", "svc_p99", "alerts", "fresh_decisions", "dispatches")
	for _, p := range r.Policies {
		t.AddRow(p.Name,
			fmt.Sprintf("%d/%d", p.Completed, p.Arrivals),
			fmt.Sprintf("%.2f", p.Throughput),
			fmt.Sprintf("%.0f", p.P50),
			fmt.Sprintf("%.0f", p.P99),
			fmt.Sprintf("%d", p.AlertsFired),
			fmt.Sprintf("%d", p.FreshDecisions),
			fmt.Sprintf("%v", p.MachineDispatches))
	}
	return t
}

// Render writes the SLO regime summary: the policy table plus the alert
// battery's episode accounting.
func (r SLORegime) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"SLO regimes (DESIGN.md §15): %d machines — p%.0f(%s latency) < %.0f periods, window %d — %s traffic, rate %.3f over %d periods\n",
		r.Machines, r.Quantile*100, r.Sensitive, r.Bound, r.Window,
		r.Curve, r.Rate, r.Horizon); err != nil {
		return err
	}
	if err := r.Table().Render(w); err != nil {
		return err
	}
	var eps []string
	for _, ep := range r.Battery.Episodes {
		eps = append(eps, fmt.Sprintf("%s[%d,%d]→w%d", ep.Objective, ep.Start, ep.End, ep.Window))
	}
	_, err := fmt.Fprintf(w,
		"alert battery: %d seeded monitor outages %v → %d firing episodes (%d false positives): %s\n",
		len(r.Battery.Windows), r.Battery.Windows, len(r.Battery.Episodes),
		r.Battery.FalsePositives, strings.Join(eps, ", "))
	return err
}

// WriteJSON emits the suite as the BENCH_slo.json artifact.
func (r SLORegime) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteDoctorBundle writes the battery run's diagnosis inputs into dir:
// SLO_series.json (the node's time-series dump), SLO_events.json (fleet +
// scheduler decision logs), SLO_trace.json (Chrome span trace), and
// SLO_objectives.json (the armed objective declarations) — the four files
// caer-doctor joins.
func (r SLORegime) WriteDoctorBundle(dir string) error {
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"SLO_series.json", r.series},
		{"SLO_events.json", r.events},
		{"SLO_trace.json", r.trace},
		{"SLO_objectives.json", r.objectives},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
