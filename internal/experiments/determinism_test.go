package experiments

import (
	"bytes"
	"testing"
)

// TestSchedRegimeByteIdenticalAcrossWorkers pins the parallel domain
// stepper's determinism contract at the artifact level: the same Suite
// seed and configuration must yield a byte-identical BENCH_sched.json
// whether the machine steps its LLC domains serially (Workers=1) or on a
// worker pool (Workers=4). check.sh runs this under -race, so the pooled
// run is also the stepper's standing data-race audit.
func TestSchedRegimeByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scheduler regime suite twice; skipped in -short")
	}
	const seed = 11
	serial := SchedRegimeSuiteWorkers(seed, true, 1)
	pooled := SchedRegimeSuiteWorkers(seed, true, 4)

	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatalf("serial WriteJSON: %v", err)
	}
	if err := pooled.WriteJSON(&b); err != nil {
		t.Fatalf("pooled WriteJSON: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("BENCH_sched.json differs between Workers=1 and Workers=4:\n--- serial ---\n%s\n--- pooled ---\n%s",
			a.String(), b.String())
	}
}
