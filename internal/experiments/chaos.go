package experiments

import (
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/spec"
)

// This file is the chaos regime suite: it subjects the sampling and
// communication path to the fault model of DESIGN.md §8 — counter resets,
// spurious jumps, dropped/stale probes, probe jitter, and outright CAER-M
// monitor crashes — and checks that the runtime degrades the way a
// transparent layer must: the latency-sensitive application always
// completes, no underflow-magnitude sample ever reaches the table, and a
// dead monitor can pause the batch for at most the watchdog horizon.

// FaultKind enumerates the injected fault classes.
type FaultKind int

const (
	// FaultNone is the clean baseline every faulted run is compared to.
	FaultNone FaultKind = iota
	// FaultCounterReset injects perf-style counter resets (the cumulative
	// count restarts from zero mid-run).
	FaultCounterReset
	// FaultCounterSpike injects persistent spurious forward jumps.
	FaultCounterSpike
	// FaultDroppedSample injects dropped probes (stale re-reads).
	FaultDroppedSample
	// FaultProbeJitter injects transient probe-timing offsets.
	FaultProbeJitter
	// FaultMonitorCrash kills a CAER-M monitor mid-run and restarts it
	// later — the fault the engine watchdog exists for.
	FaultMonitorCrash

	numFaultKinds
)

// String names the fault class.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCounterReset:
		return "counter-reset"
	case FaultCounterSpike:
		return "counter-spike"
	case FaultDroppedSample:
		return "dropped-sample"
	case FaultProbeJitter:
		return "probe-jitter"
	case FaultMonitorCrash:
		return "monitor-crash"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultKinds returns every fault class, clean baseline first.
func FaultKinds() []FaultKind {
	out := make([]FaultKind, numFaultKinds)
	for i := range out {
		out[i] = FaultKind(i)
	}
	return out
}

// faultConfig maps a counter-fault class to its injection parameters. The
// probabilities are deliberately heavy — a regime is interesting only if
// faults actually land every few periods.
func (k FaultKind) faultConfig(seed int64) (pmu.FaultConfig, bool) {
	c := pmu.FaultConfig{Seed: seed}
	switch k {
	case FaultCounterReset:
		c.ResetProb = 0.05
	case FaultCounterSpike:
		c.SpikeProb = 0.05
	case FaultDroppedSample:
		c.DropProb = 0.10
	case FaultProbeJitter:
		c.JitterProb = 0.20
	case FaultNone, FaultMonitorCrash:
		return c, false
	default:
		panic(fmt.Sprintf("experiments: unknown fault kind %d", int(k)))
	}
	return c, true
}

// ChaosScenario configures one chaos regime run.
type ChaosScenario struct {
	// Heuristic is the CAER pairing under test.
	Heuristic caer.HeuristicKind
	// Fault is the injected fault class.
	Fault FaultKind
	// Seed drives workload and fault schedules.
	Seed int64
	// Quick shrinks the workload (for -short tests and `caer-bench -quick`).
	Quick bool
	// Sampling selects the probe schedule (zero value: every-period
	// polling). The interrupt regime proves the event-driven path recovers
	// through every fault class, not just clean traces.
	Sampling caer.SamplingMode
}

// Monitor-crash schedule: the monitor dies at chaosCrashStart periods and
// revives chaosOutageFactor watchdog horizons later, so the outage is long
// enough that only a working watchdog lets the batch run during it. The
// chaos runs use a tighter watchdog than DefaultConfig so that even the
// quick (-short) workload comfortably spans crash, outage, and recovery.
const (
	chaosWatchdog     = 10
	chaosCrashStart   = 20
	chaosOutageFactor = 3
	chaosMaxPeriods   = 10_000_000
)

// ChaosReport is one regime's outcome.
type ChaosReport struct {
	Heuristic caer.HeuristicKind
	Fault     FaultKind
	Sampling  caer.SamplingMode

	// Completed reports whether the latency-sensitive app finished.
	Completed bool
	// Periods is the latency app's wall-clock run length.
	Periods uint64
	// CPositive / CNegative are the engine's verdict counts.
	CPositive, CNegative uint64
	// PausedPeriods counts periods the batch was directed to pause.
	PausedPeriods uint64
	// WatchdogTrips / DegradedTicks are the engine's fail-open counters.
	WatchdogTrips, DegradedTicks uint64
	// DegradedAtEnd reports whether the engine was still failing open when
	// the run finished (it must not be, once faults cease).
	DegradedAtEnd bool
	// MaxSample is the largest LLC-miss sample either slot published. An
	// unhardened read-delta underflow would surface here as ~1.8e19.
	MaxSample float64
	// Faults counts the injected counter faults (zero for FaultNone and
	// FaultMonitorCrash).
	Faults pmu.FaultCounts
	// OutagePauseStreak is the longest consecutive run of paused periods
	// observed while the monitor was down (FaultMonitorCrash only).
	// Fail-open bounds it by the watchdog horizon; pauses after the monitor
	// revives are legitimate detection/response pauses and are not counted.
	OutagePauseStreak int
	// OutageEnd is the period the monitor revived (FaultMonitorCrash only);
	// reports with Periods <= OutageEnd never exercised the recovery path.
	OutageEnd int
	// WatchdogPeriods is the staleness horizon the run used.
	WatchdogPeriods int
	// SkippedPeriods counts probe periods the sampling schedule elided
	// (zero under polling).
	SkippedPeriods uint64
}

// RunChaos executes one chaos regime: mcf (the most contention-sensitive
// latency app) next to the lbm batch adversary, with the scenario's fault
// class injected into the sampling path.
func RunChaos(s ChaosScenario) ChaosReport {
	lat, ok := spec.ByName("mcf")
	if !ok {
		panic("experiments: mcf profile missing")
	}
	if s.Quick {
		lat.Exec.Instructions /= 4
	}

	cfg := caer.DefaultConfig()
	cfg.WatchdogPeriods = chaosWatchdog
	cfg.Sampling = s.Sampling
	// The keepalive cadence must stay inside the tight chaos watchdog.
	if cfg.MaxProbeInterval >= chaosWatchdog {
		cfg.MaxProbeInterval = chaosWatchdog - 2
	}
	m := machine.New(machine.Config{Cores: 2})
	var opts []caer.Option
	var faults *pmu.FaultSource
	if fc, isCounterFault := s.Fault.faultConfig(s.Seed); isCounterFault {
		faults = pmu.NewFaultSource(m, fc)
		opts = append(opts, caer.WithSource(faults))
	}
	rt := caer.NewRuntime(m, s.Heuristic, cfg, opts...)
	latProc := lat.NewProcess(0, s.Seed)
	rt.AddLatency("mcf", 0, latProc)
	rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, s.Seed+1))

	out := ChaosReport{Heuristic: s.Heuristic, Fault: s.Fault, Sampling: s.Sampling, WatchdogPeriods: cfg.WatchdogPeriods}
	outageEnd := chaosCrashStart + chaosOutageFactor*cfg.WatchdogPeriods
	latSlot := rt.Monitors()[0].Slot()
	streak := 0
	for p := 0; p < chaosMaxPeriods && !latProc.Done(); p++ {
		if s.Fault == FaultMonitorCrash {
			if p == chaosCrashStart {
				rt.Monitors()[0].SetDown(true)
			}
			if p == outageEnd {
				rt.Monitors()[0].SetDown(false)
			}
		}
		rt.Step()
		if v := latSlot.LastSample(); v > out.MaxSample {
			out.MaxSample = v
		}
		eng := rt.Engines()[0]
		if v := eng.OwnMean(); v > out.MaxSample {
			out.MaxSample = v
		}
		if s.Fault == FaultMonitorCrash && p >= chaosCrashStart && p < outageEnd {
			if eng.Directive() == comm.DirectivePause {
				streak++
				if streak > out.OutagePauseStreak {
					out.OutagePauseStreak = streak
				}
			} else {
				streak = 0
			}
		}
	}

	eng := rt.Engines()[0]
	st := eng.Stats()
	out.Completed = latProc.Done()
	out.Periods = m.Periods()
	out.CPositive = st.CPositive
	out.CNegative = st.CNegative
	out.PausedPeriods = st.PausedPeriods
	out.WatchdogTrips = st.WatchdogTrips
	out.DegradedTicks = st.DegradedTicks
	out.DegradedAtEnd = eng.Degraded()
	out.OutageEnd = outageEnd
	out.SkippedPeriods = rt.SamplingStats().SkippedPeriods
	if faults != nil {
		out.Faults = faults.Counts()
	}
	return out
}

// ChaosHeuristics are the pairings the chaos suite covers: the paper's two
// deployable configurations plus the hybrid extension.
func ChaosHeuristics() []caer.HeuristicKind {
	return []caer.HeuristicKind{caer.HeuristicShutter, caer.HeuristicRule, caer.HeuristicHybrid}
}

// ChaosSuite runs every fault class against every chaos heuristic under
// polling, then re-runs the full fault sweep with the rule heuristic in
// threshold-interrupt mode — the event-driven path must recover through
// every fault class too. Reports keep clean baselines first within each
// block.
func ChaosSuite(seed int64, quick bool) []ChaosReport {
	var out []ChaosReport
	for _, h := range ChaosHeuristics() {
		for _, f := range FaultKinds() {
			out = append(out, RunChaos(ChaosScenario{Heuristic: h, Fault: f, Seed: seed, Quick: quick}))
		}
	}
	for _, f := range FaultKinds() {
		out = append(out, RunChaos(ChaosScenario{
			Heuristic: caer.HeuristicRule, Fault: f, Seed: seed, Quick: quick,
			Sampling: caer.SamplingInterrupt,
		}))
	}
	return out
}

// WriteChaosReport renders the suite's reports as the EXPERIMENTS.md chaos
// table.
func WriteChaosReport(w io.Writer, reports []ChaosReport) {
	fmt.Fprintf(w, "%-12s %-15s %-9s %9s %7s/%-7s %7s %6s %6s %8s %11s\n",
		"heuristic", "fault", "sampling", "periods", "c+", "c-", "paused", "trips", "degr", "skipped", "max-sample")
	for _, r := range reports {
		fmt.Fprintf(w, "%-12s %-15s %-9s %9d %7d/%-7d %7d %6d %6d %8d %11.0f\n",
			r.Heuristic, r.Fault, r.Sampling, r.Periods, r.CPositive, r.CNegative,
			r.PausedPeriods, r.WatchdogTrips, r.DegradedTicks, r.SkippedPeriods, r.MaxSample)
	}
}
