package experiments

import (
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/spec"
	"caer/internal/stats"
)

// AdversarySweep validates the paper's §6.1 claim that the choice of batch
// adversary does not change the story: "We have performed complete runs
// using other benchmarks such as libquantum and milc and produced very
// similar results." For each adversary it reports the mean native
// co-location penalty and the mean CAER (rule-based) penalty across a set
// of latency-sensitive benchmarks.
type AdversarySweep struct {
	Adversaries []string
	Latency     []string
	// ColoMean[i] / CAERMean[i] are means across the latency set when
	// adversary i is the batch application.
	ColoMean []float64
	CAERMean []float64
}

// AdversarySweep runs the sweep. Adversaries that also appear in the
// latency set are fine — they are simply run against themselves too.
func (s *Suite) AdversarySweep(latency []spec.Profile, adversaries []spec.Profile, kind caer.HeuristicKind) AdversarySweep {
	s.mu.Lock()
	s.defaults()
	seed := s.Seed
	cfg := s.Config
	s.mu.Unlock()

	out := AdversarySweep{}
	for _, l := range latency {
		out.Latency = append(out.Latency, l.Name)
	}
	for _, adv := range adversaries {
		out.Adversaries = append(out.Adversaries, adv.Name)
		var colos, caers []float64
		for _, lat := range latency {
			alone := s.Result(lat, runner.ModeAlone, 0)
			colo := runner.Run(runner.Scenario{
				Latency: lat, Batch: adv, Mode: runner.ModeNativeColo, Seed: seed, Config: cfg})
			managed := runner.Run(runner.Scenario{
				Latency: lat, Batch: adv, Mode: runner.ModeCAER, Heuristic: kind, Seed: seed, Config: cfg})
			colos = append(colos, runner.Slowdown(colo, alone))
			caers = append(caers, runner.Slowdown(managed, alone))
		}
		out.ColoMean = append(out.ColoMean, stats.Mean(colos))
		out.CAERMean = append(out.CAERMean, stats.Mean(caers))
	}
	return out
}

// Table returns the sweep as a table.
func (a AdversarySweep) Table() *report.Table {
	t := report.NewTable("adversary", "mean_colo_slowdown", "mean_caer_slowdown")
	for i, adv := range a.Adversaries {
		t.AddRow(adv, fmt.Sprintf("%.4f", a.ColoMean[i]), fmt.Sprintf("%.4f", a.CAERMean[i]))
	}
	return t
}

// Render writes the sweep with a heading.
func (a AdversarySweep) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Adversary sweep (§6.1): mean slowdown across %d latency benchmarks per adversary\n", len(a.Latency)); err != nil {
		return err
	}
	return a.Table().Render(w)
}
