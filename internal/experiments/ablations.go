package experiments

import (
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/spec"
)

// PartitionSweep contrasts CAER's software throttling with the
// hardware-QoS alternative the paper's related work discusses: statically
// way-partitioning the shared cache between the latency-sensitive and
// batch applications. Each row gives the latency app's slowdown and the
// batch duty cycle for one partition split; the CAER rows anchor the
// comparison.
type PartitionSweep struct {
	Benchmark string
	Ways      []int     // latency app's ways of the 16
	Slowdown  []float64 // latency slowdown at that split
	BatchDuty []float64 // batch duty (1.0: partitioning never throttles)

	ColoSlowdown                 float64 // unpartitioned sharing
	RuleSlowdown, RuleDuty       float64 // CAER rule-based
	ShutterSlowdown, ShutterDuty float64 // CAER shutter
}

// PartitionSweep runs the ablation for one benchmark across the given way
// splits (each in [1, 15] of the 16-way L3).
func (s *Suite) PartitionSweep(bench spec.Profile, ways []int) PartitionSweep {
	s.mu.Lock()
	s.defaults()
	seed := s.Seed
	cfg := s.Config
	batch := s.Batch
	s.mu.Unlock()

	alone := s.Result(bench, runner.ModeAlone, 0)
	out := PartitionSweep{Benchmark: bench.Name}
	for _, w := range ways {
		r := runner.Run(runner.Scenario{
			Latency: bench, Batch: batch, Mode: runner.ModeNativeColo,
			Seed: seed, Config: cfg, PartitionWays: w,
		})
		out.Ways = append(out.Ways, w)
		out.Slowdown = append(out.Slowdown, runner.Slowdown(r, alone))
		out.BatchDuty = append(out.BatchDuty, r.BatchDuty)
	}
	out.ColoSlowdown = runner.Slowdown(s.Result(bench, runner.ModeNativeColo, 0), alone)
	rule := s.Result(bench, runner.ModeCAER, caer.HeuristicRule)
	shutter := s.Result(bench, runner.ModeCAER, caer.HeuristicShutter)
	out.RuleSlowdown, out.RuleDuty = runner.Slowdown(rule, alone), rule.BatchDuty
	out.ShutterSlowdown, out.ShutterDuty = runner.Slowdown(shutter, alone), shutter.BatchDuty
	return out
}

// Table returns the sweep as a table.
func (a PartitionSweep) Table() *report.Table {
	t := report.NewTable("configuration", "latency_slowdown", "batch_duty")
	t.AddRow("shared L3 (native)", fmt.Sprintf("%.4f", a.ColoSlowdown), "100.0%")
	for i, w := range a.Ways {
		t.AddRow(fmt.Sprintf("partition %d/%d ways", w, 16-w),
			fmt.Sprintf("%.4f", a.Slowdown[i]), report.Percent(a.BatchDuty[i]))
	}
	t.AddRow("CAER shutter", fmt.Sprintf("%.4f", a.ShutterSlowdown), report.Percent(a.ShutterDuty))
	t.AddRow("CAER rule-based", fmt.Sprintf("%.4f", a.RuleSlowdown), report.Percent(a.RuleDuty))
	return t
}

// Render writes the sweep table with a heading.
func (a PartitionSweep) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Ablation: static L3 way-partitioning vs CAER (%s vs lbm)\n", a.Benchmark); err != nil {
		return err
	}
	return a.Table().Render(w)
}

// ResponseComparison contrasts the response mechanisms on one benchmark:
// pausing (the paper's throttle), DVFS-style down-clocking at several
// divisors, and the adaptive red-light/green-light extension.
type ResponseComparison struct {
	Benchmark string
	Rows      []ResponseRow
}

// ResponseRow is one response variant's outcome.
type ResponseRow struct {
	Name            string
	Slowdown        float64
	BatchThroughput float64 // batch instructions per period, normalized to pause=1 is not used; raw per-period
	PausedFraction  float64
}

// ResponseComparison runs the response ablation for one benchmark.
func (s *Suite) ResponseComparison(bench spec.Profile) ResponseComparison {
	s.mu.Lock()
	s.defaults()
	seed := s.Seed
	cfg := s.Config
	batch := s.Batch
	s.mu.Unlock()

	alone := s.Result(bench, runner.ModeAlone, 0)
	out := ResponseComparison{Benchmark: bench.Name}
	add := func(name string, sc runner.Scenario) {
		r := runner.Run(sc)
		out.Rows = append(out.Rows, ResponseRow{
			Name:            name,
			Slowdown:        runner.Slowdown(r, alone),
			BatchThroughput: float64(r.BatchInstructions) / float64(r.Periods),
			PausedFraction:  float64(r.PausedPeriods) / float64(r.Periods),
		})
	}
	base := runner.Scenario{Latency: bench, Batch: batch, Seed: seed, Config: cfg, Mode: runner.ModeCAER}

	sc := base
	sc.Heuristic = caer.HeuristicShutter
	add("shutter + red/green(10)", sc)

	adaptive := cfg
	adaptive.AdaptiveResponse = true
	sc = base
	sc.Heuristic = caer.HeuristicShutter
	sc.Config = adaptive
	add("shutter + adaptive red/green", sc)

	sc = base
	sc.Heuristic = caer.HeuristicRule
	add("rule + soft lock (pause)", sc)

	for _, div := range []int{2, 4, 8} {
		sc = base
		sc.Heuristic = caer.HeuristicRule
		sc.Actuator = caer.DVFSActuator(div)
		add(fmt.Sprintf("rule + DVFS 1/%d", div), sc)
	}
	return out
}

// Table returns the comparison as a table.
func (a ResponseComparison) Table() *report.Table {
	t := report.NewTable("response", "latency_slowdown", "batch_instr_per_period", "throttled_fraction")
	for _, r := range a.Rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.4f", r.Slowdown),
			fmt.Sprintf("%.0f", r.BatchThroughput),
			report.Percent(r.PausedFraction))
	}
	return t
}

// Render writes the comparison table with a heading.
func (a ResponseComparison) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Ablation: response mechanisms (%s vs lbm)\n", a.Benchmark); err != nil {
		return err
	}
	return a.Table().Render(w)
}

// TuningSweep maps the heuristic tuning space (paper §6.2's future work):
// the shutter impact factor and the rule-based usage threshold, each
// traded against utilization.
type TuningSweep struct {
	Benchmark     string
	ImpactFactors []float64
	ShutterRows   []TuningRow
	UsageThreshes []float64
	RuleRows      []TuningRow
}

// TuningRow is one knob setting's outcome.
type TuningRow struct {
	Knob              float64
	Slowdown          float64
	UtilizationGained float64
}

// TuningSweep sweeps both knobs for one benchmark.
func (s *Suite) TuningSweep(bench spec.Profile, impacts, threshes []float64) TuningSweep {
	s.mu.Lock()
	s.defaults()
	seed := s.Seed
	base := s.Config
	batch := s.Batch
	s.mu.Unlock()

	alone := s.Result(bench, runner.ModeAlone, 0)
	out := TuningSweep{Benchmark: bench.Name, ImpactFactors: impacts, UsageThreshes: threshes}
	for _, imp := range impacts {
		cfg := base
		cfg.ImpactFactor = imp
		r := runner.Run(runner.Scenario{Latency: bench, Batch: batch, Seed: seed,
			Mode: runner.ModeCAER, Heuristic: caer.HeuristicShutter, Config: cfg})
		out.ShutterRows = append(out.ShutterRows, TuningRow{imp, runner.Slowdown(r, alone), r.BatchDuty})
	}
	for _, th := range threshes {
		cfg := base
		cfg.UsageThresh = th
		r := runner.Run(runner.Scenario{Latency: bench, Batch: batch, Seed: seed,
			Mode: runner.ModeCAER, Heuristic: caer.HeuristicRule, Config: cfg})
		out.RuleRows = append(out.RuleRows, TuningRow{th, runner.Slowdown(r, alone), r.BatchDuty})
	}
	return out
}

// Render writes both sweep tables.
func (a TuningSweep) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Tuning space: %s vs lbm\n\nshutter impact factor:\n", a.Benchmark); err != nil {
		return err
	}
	t := report.NewTable("impact_factor", "latency_slowdown", "util_gained")
	for _, r := range a.ShutterRows {
		t.AddRow(fmt.Sprintf("%g", r.Knob), fmt.Sprintf("%.4f", r.Slowdown), report.Percent(r.UtilizationGained))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nrule-based usage threshold:\n"); err != nil {
		return err
	}
	t = report.NewTable("usage_thresh", "latency_slowdown", "util_gained")
	for _, r := range a.RuleRows {
		t.AddRow(fmt.Sprintf("%g", r.Knob), fmt.Sprintf("%.4f", r.Slowdown), report.Percent(r.UtilizationGained))
	}
	return t.Render(w)
}
