package experiments

import (
	"strings"
	"testing"

	"caer/internal/spec"
)

func ablationBench(t *testing.T) (s *Suite, bench spec.Profile) {
	t.Helper()
	s = smallSuite(t)
	return s, s.Benchmarks[0] // shrunken mcf
}

func TestPartitionSweepShape(t *testing.T) {
	s, mcf := ablationBench(t)
	a := s.PartitionSweep(mcf, []int{4, 8, 12})
	if len(a.Ways) != 3 {
		t.Fatalf("sweep rows = %d, want 3", len(a.Ways))
	}
	// More ways for the latency app -> less slowdown, monotonically.
	if !(a.Slowdown[0] >= a.Slowdown[1] && a.Slowdown[1] >= a.Slowdown[2]) {
		t.Errorf("partition slowdowns not monotone: %v", a.Slowdown)
	}
	// Any partition beats unmanaged sharing for this pair.
	if a.Slowdown[2] >= a.ColoSlowdown {
		t.Errorf("12-way partition (%.3f) not better than sharing (%.3f)", a.Slowdown[2], a.ColoSlowdown)
	}
	// Partitioning never throttles the batch.
	for i, d := range a.BatchDuty {
		if d < 0.95 {
			t.Errorf("partition %d ways: batch duty %.3f, want ~1", a.Ways[i], d)
		}
	}
	// CAER anchors present.
	if a.RuleSlowdown <= 1 || a.ShutterSlowdown <= 1 {
		t.Error("CAER anchor rows missing or nonsensical")
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "partition 8/8 ways") {
		t.Errorf("render missing partition rows:\n%s", sb.String())
	}
	if a.Table().Len() != 6 { // colo + 3 partitions + 2 CAER
		t.Errorf("table rows = %d, want 6", a.Table().Len())
	}
}

func TestResponseComparisonShape(t *testing.T) {
	s, mcf := ablationBench(t)
	a := s.ResponseComparison(mcf)
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(a.Rows))
	}
	byName := map[string]ResponseRow{}
	for _, r := range a.Rows {
		byName[r.Name] = r
	}
	pause := byName["rule + soft lock (pause)"]
	dvfs8 := byName["rule + DVFS 1/8"]
	dvfs2 := byName["rule + DVFS 1/2"]
	// Down-clocking keeps the batch progressing faster than pausing...
	if dvfs2.BatchThroughput <= pause.BatchThroughput {
		t.Errorf("DVFS/2 batch throughput %.0f not above pause %.0f",
			dvfs2.BatchThroughput, pause.BatchThroughput)
	}
	// ...but protects the latency app less (or equal) at mild divisors.
	if dvfs2.Slowdown < pause.Slowdown-0.01 {
		t.Errorf("DVFS/2 slowdown %.3f unexpectedly below pause %.3f", dvfs2.Slowdown, pause.Slowdown)
	}
	// Deeper throttling protects at least as well as shallower.
	if dvfs8.Slowdown > dvfs2.Slowdown+0.01 {
		t.Errorf("DVFS/8 slowdown %.3f above DVFS/2 %.3f", dvfs8.Slowdown, dvfs2.Slowdown)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTuningSweepFrontier(t *testing.T) {
	s, mcf := ablationBench(t)
	a := s.TuningSweep(mcf, []float64{0.05, 50}, []float64{50, 5000})
	if len(a.ShutterRows) != 2 || len(a.RuleRows) != 2 {
		t.Fatalf("sweep rows = %d/%d", len(a.ShutterRows), len(a.RuleRows))
	}
	// Loosening the rule threshold trades QoS for utilization.
	strict, loose := a.RuleRows[0], a.RuleRows[1]
	if loose.UtilizationGained < strict.UtilizationGained {
		t.Errorf("loose threshold gained less utilization (%.3f) than strict (%.3f)",
			loose.UtilizationGained, strict.UtilizationGained)
	}
	if loose.Slowdown < strict.Slowdown-0.01 {
		t.Errorf("loose threshold slowdown %.3f below strict %.3f", loose.Slowdown, strict.Slowdown)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "impact_factor") || !strings.Contains(sb.String(), "usage_thresh") {
		t.Error("render missing sweep tables")
	}
}
