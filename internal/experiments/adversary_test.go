package experiments

import (
	"strings"
	"testing"

	"caer/internal/caer"
	"caer/internal/spec"
)

func TestAdversarySweepSimilarResults(t *testing.T) {
	s := smallSuite(t)
	latency := s.Benchmarks // shrunken mcf, astar, namd

	shrink := func(name string, n uint64) spec.Profile {
		p, ok := spec.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		p.Exec.Instructions = n
		return p
	}
	adversaries := []spec.Profile{
		shrink("lbm", 300_000),
		shrink("libquantum", 300_000),
		shrink("milc", 300_000),
	}

	a := s.AdversarySweep(latency, adversaries, caer.HeuristicRule)
	if len(a.Adversaries) != 3 || len(a.ColoMean) != 3 || len(a.CAERMean) != 3 {
		t.Fatalf("sweep shape wrong: %+v", a)
	}
	for i, adv := range a.Adversaries {
		// Every heavy adversary causes contention, and CAER reduces it —
		// the paper's "very similar results" claim.
		if a.ColoMean[i] <= 1.02 {
			t.Errorf("%s: mean colo slowdown %.3f, want contention", adv, a.ColoMean[i])
		}
		if a.CAERMean[i] >= a.ColoMean[i] {
			t.Errorf("%s: CAER mean %.3f not below colo mean %.3f", adv, a.CAERMean[i], a.ColoMean[i])
		}
	}
	// "Very similar": the native penalty ordering across adversaries stays
	// within a small band (all are heavy cache users).
	lo, hi := a.ColoMean[0], a.ColoMean[0]
	for _, v := range a.ColoMean {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 1.5 {
		t.Errorf("adversaries disagree too much: colo means %v", a.ColoMean)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Adversary sweep") {
		t.Error("render missing heading")
	}
	if a.Table().Len() != 3 {
		t.Errorf("table rows = %d", a.Table().Len())
	}
}
