//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The regime
// suites are 10-20x slower under instrumentation, so tests that re-run a
// whole suite purely to compare artifacts skip those repeats under -race;
// the underlying determinism is pinned race-enabled in internal/fleet.
const raceEnabled = true
