package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/report"
	"caer/internal/spec"
	"caer/internal/workload"
)

// This file is the detection-latency-vs-overhead sweep for the sampling
// modes (DESIGN.md §13): the same fixed, seeded contention trace — an idle
// latency app hit by scripted neighbour-pressure bursts beside an lbm
// batch adversary — replayed under every-period polling, the adaptive
// interval controller at several max-interval bounds, and threshold-
// interrupt mode. The gate mirrors the related mc-linux result: the
// event-driven modes must flag every contention burst the poller flags
// (equal coverage) at measurably fewer probes (lower overhead).

// burstSchedule is the scripted pressure trace: at each onset a burst adds
// Rate synthetic LLC misses per period on the latency core for Length
// periods. Onsets must be sorted and spaced at least Length apart.
type burstSchedule struct {
	Onsets []uint64
	Length uint64
	Rate   uint64
}

// extra returns the cumulative synthetic misses the schedule has injected
// by the given machine period. Pure function of the period, so replaying a
// trace is deterministic regardless of how often counters are read.
func (b burstSchedule) extra(period uint64) uint64 {
	var total uint64
	for _, o := range b.Onsets {
		if period <= o {
			break
		}
		e := period - o
		if e > b.Length {
			e = b.Length
		}
		total += e * b.Rate
	}
	return total
}

// burstSource interposes the schedule on the machine's PMU: the latency
// core's LLC-miss counter reads the machine's own count plus the scripted
// pressure. Reads are side-effect free, so it is trivially Peek-safe.
type burstSource struct {
	m     *machine.Machine
	core  int
	sched burstSchedule
}

func (s *burstSource) ReadCounter(core int, ev pmu.Event) uint64 {
	v := s.m.ReadCounter(core, ev)
	if core == s.core && ev == pmu.EventLLCMisses {
		v += s.sched.extra(s.m.Periods())
	}
	return v
}

// SamplingPoint is one swept configuration's outcome on the shared trace.
type SamplingPoint struct {
	// Mode is the sampling mode's name; MaxInterval is the widest probe
	// interval the mode was allowed (1 for polling).
	Mode        string
	MaxInterval int
	// Probes / Skipped partition the run's periods; probes are the
	// sampling overhead the event-driven modes exist to shed.
	Probes  uint64
	Skipped uint64
	// Keepalives and Fires are interrupt-mode detail: staleness-bounding
	// probes taken mid-sleep, and threshold trigger fires.
	Keepalives uint64
	Fires      uint64
	// Flagged counts bursts detected (a contention verdict inside the
	// burst's attribution span); FalseFlags counts verdicts before any
	// burst began.
	Flagged    int
	FalseFlags int
	// MeanLatency / MaxLatency are detection latencies in periods from
	// burst onset to the first contention verdict, over flagged bursts.
	MeanLatency float64
	MaxLatency  uint64
}

// SamplingReport is the full sweep over one seeded trace.
type SamplingReport struct {
	Seed    int64
	Quick   bool
	Bursts  int
	Length  uint64
	Rate    uint64
	Periods int
	Points  []SamplingPoint
}

// The sweep's trace and runtime shape. The watchdog horizon is widened
// past the largest swept interval (Validate rejects a probe interval that
// could outwait the watchdog), and the burst rate sits far above
// UsageThresh so a single probe of a burst is an unambiguous verdict.
const (
	samplingWatchdog   = 160
	samplingBurstRate  = 5000
	samplingFirstOnset = 100
)

// samplingTrace builds the fixed trace: quick keeps the sweep inside a
// -short test budget; full is the caer-bench artifact.
func samplingTrace(quick bool) (burstSchedule, int) {
	bursts, length, gap := 12, uint64(60), uint64(440)
	if quick {
		bursts, length, gap = 6, 40, 260
	}
	sched := burstSchedule{Length: length, Rate: samplingBurstRate}
	for j := 0; j < bursts; j++ {
		sched.Onsets = append(sched.Onsets, samplingFirstOnset+uint64(j)*(length+gap))
	}
	last := sched.Onsets[bursts-1]
	return sched, int(last + length + gap)
}

// samplingSweep is the swept mode grid.
type samplingSweep struct {
	mode caer.SamplingMode
	max  int
}

func samplingSweepGrid() []samplingSweep {
	return []samplingSweep{
		{caer.SamplingPolling, 1},
		{caer.SamplingAdaptive, 4},
		{caer.SamplingAdaptive, 16},
		{caer.SamplingAdaptive, 64},
		{caer.SamplingInterrupt, 16},
	}
}

// SamplingSuite replays the seeded trace under every swept configuration.
func SamplingSuite(seed int64, quick bool) SamplingReport {
	sched, periods := samplingTrace(quick)
	out := SamplingReport{
		Seed: seed, Quick: quick,
		Bursts: len(sched.Onsets), Length: sched.Length, Rate: sched.Rate,
		Periods: periods,
	}
	for _, sw := range samplingSweepGrid() {
		out.Points = append(out.Points, runSamplingPoint(sw, sched, periods, seed))
	}
	return out
}

func runSamplingPoint(sw samplingSweep, sched burstSchedule, periods int, seed int64) SamplingPoint {
	m := machine.New(machine.Config{Cores: 2})
	src := &burstSource{m: m, core: 0, sched: sched}

	cfg := caer.DefaultConfig()
	cfg.WatchdogPeriods = samplingWatchdog
	cfg.Sampling = sw.mode
	cfg.MaxProbeInterval = sw.max

	rt := caer.NewRuntime(m, caer.HeuristicRule, cfg, caer.WithSource(src))
	// The latency app's own working set fits in cache: its miss floor is
	// ~0 after warm-up, so the trace's pressure is the only signal.
	rt.AddLatency("idle", 0, machine.NewProcess("idle",
		machine.ExecProfile{MemFraction: 0.05, BaseCPI: 1},
		workload.NewStream(0, 4096, 64, 0), seed))
	rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, seed+1))

	var flags []uint64
	var seen uint64
	for p := 0; p < periods; p++ {
		rt.Step()
		if c := rt.Engines()[0].Stats().CPositive; c > seen {
			seen = c
			flags = append(flags, m.Periods())
		}
	}

	st := rt.SamplingStats()
	pt := SamplingPoint{
		Mode:        st.Mode.String(),
		MaxInterval: sw.max,
		Probes:      st.ProbePeriods,
		Skipped:     st.SkippedPeriods,
		Keepalives:  st.Keepalives,
		Fires:       st.TriggerFires,
	}
	// Attribute each verdict to the burst whose span (onset up to the next
	// onset) contains it; verdicts before the first onset are false flags.
	var totalLat uint64
	for j, onset := range sched.Onsets {
		end := uint64(periods) + 1
		if j+1 < len(sched.Onsets) {
			end = sched.Onsets[j+1]
		}
		for _, f := range flags {
			if f > onset && f <= end {
				lat := f - onset
				totalLat += lat
				if lat > pt.MaxLatency {
					pt.MaxLatency = lat
				}
				pt.Flagged++
				break
			}
		}
	}
	for _, f := range flags {
		if f <= sched.Onsets[0] {
			pt.FalseFlags++
		}
	}
	if pt.Flagged > 0 {
		pt.MeanLatency = float64(totalLat) / float64(pt.Flagged)
	}
	return pt
}

// Check enforces the sweep's gate: every swept mode must flag every burst
// with no false flags, and every event-driven point must spend strictly
// fewer probes than the polling baseline.
func (r SamplingReport) Check() error {
	if len(r.Points) == 0 {
		return fmt.Errorf("sampling sweep produced no points")
	}
	base := r.Points[0]
	if base.Mode != caer.SamplingPolling.String() {
		return fmt.Errorf("sweep baseline is %s, want polling", base.Mode)
	}
	for _, p := range r.Points {
		if p.Flagged != r.Bursts {
			return fmt.Errorf("%s/max=%d flagged %d of %d bursts", p.Mode, p.MaxInterval, p.Flagged, r.Bursts)
		}
		if p.FalseFlags != 0 {
			return fmt.Errorf("%s/max=%d raised %d false flags", p.Mode, p.MaxInterval, p.FalseFlags)
		}
		if p.Mode != base.Mode && p.Probes >= base.Probes {
			return fmt.Errorf("%s/max=%d spent %d probes, not fewer than polling's %d",
				p.Mode, p.MaxInterval, p.Probes, base.Probes)
		}
	}
	return nil
}

// Table renders the sweep as a comparison table.
func (r SamplingReport) Table() *report.Table {
	t := report.NewTable("mode", "max_int", "probes", "skipped", "keepalive",
		"fires", "flagged", "false", "mean_lat", "max_lat")
	for _, p := range r.Points {
		t.AddRow(p.Mode,
			fmt.Sprintf("%d", p.MaxInterval),
			fmt.Sprintf("%d", p.Probes),
			fmt.Sprintf("%d", p.Skipped),
			fmt.Sprintf("%d", p.Keepalives),
			fmt.Sprintf("%d", p.Fires),
			fmt.Sprintf("%d/%d", p.Flagged, r.Bursts),
			fmt.Sprintf("%d", p.FalseFlags),
			fmt.Sprintf("%.1f", p.MeanLatency),
			fmt.Sprintf("%d", p.MaxLatency))
	}
	return t
}

// Render writes the sweep summary.
func (r SamplingReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Sampling sweep (DESIGN.md §13): %d bursts of %d periods at %d misses/period over %d periods, seed %d\n",
		r.Bursts, r.Length, r.Rate, r.Periods, r.Seed); err != nil {
		return err
	}
	return r.Table().Render(w)
}

// WriteJSON emits the sweep as a machine-readable artifact (the
// BENCH_sampling.json format caer-bench writes for external tooling).
func (r SamplingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
