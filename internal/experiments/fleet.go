package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/fleet"
	"caer/internal/report"
	"caer/internal/sched"
	"caer/internal/spec"
)

// FleetPolicyResult is one cross-machine placement policy's outcome in the
// fleet regime suite: the same machines, services, and open-loop traffic
// schedule, differing only in how the fleet queue's jobs are spread across
// machines.
type FleetPolicyResult struct {
	// Name labels the configuration (policy, plus "+migration" when
	// bounded-rate cross-machine migration is enabled).
	Name   string
	Policy fleet.Policy

	// Ticks is the run length in periods; Arrivals and Completed pin the
	// admitted throughput the comparison holds equal (every policy drains
	// the identical arrival schedule).
	Ticks      int
	Arrivals   int
	Completed  int
	Throughput float64 // completed jobs per 1000 periods
	Migrations int

	// Sensitive-service QoS, fleet-wide: completed open-loop requests of
	// the latency-critical service class and their duration quantiles in
	// periods. This is the gate metric — least-pressure placement must
	// strictly beat round-robin on P99.
	Requests int
	P50, P99 float64

	// Fleet queueing (periods): how long jobs waited for a core and how
	// long arrival-to-completion took, cluster-wide.
	WaitP50, WaitP99       float64
	SojournP50, SojournP99 float64

	// MachineDispatches is the placement signature, jobs dispatched per
	// machine: least-pressure steers the aggressor-heavy mix toward the
	// insensitive machines, round-robin splits it blindly.
	MachineDispatches []int
}

// FleetRegime is the fleet regime suite's result: a heterogeneous cluster
// (the first half of the machines host a latency-critical open-loop
// service, the rest an insensitive background service) fed an identical
// aggressor-heavy open-loop traffic schedule, compared across cross-machine
// placement policies at equal admitted throughput.
type FleetRegime struct {
	Machines   int
	Sensitive  string // open-loop service class on machines [0, Machines/2)
	Background string // open-loop service class on the remaining machines
	JobMix     []string
	Curve      string
	Rate       float64 // mean arrivals per period at the curve's reference level
	Horizon    int
	Seed       int64

	Policies []FleetPolicyResult
}

// fleetRegimeConfig is one suite row: a fleet policy plus whether bounded
// cross-machine migration is on.
type fleetRegimeConfig struct {
	name          string
	policy        fleet.Policy
	migratePeriod int
}

// FleetSuite runs the fleet regime comparison (DESIGN.md §14): four
// 2-LLC-domain machines — two hosting a sensitive mcf open-loop service,
// two an insensitive namd one — fed a diurnal, lbm-heavy job schedule, with
// cross-machine placement compared at equal admitted throughput. quick
// shrinks instruction counts 4x (and the traffic horizon to match, keeping
// offered load constant) for a fast smoke run.
func FleetSuite(seed int64, quick bool) FleetRegime {
	return FleetSuiteWorkers(seed, quick, 1)
}

// FleetSuiteWorkers is FleetSuite with every machine's domain-stepper
// worker pool sized to workers. Results are bit-identical for every worker
// count (the machine package's determinism contract, inherited fleet-wide);
// workers is deliberately NOT recorded in the FleetRegime artifact so
// byte-comparing BENCH_fleet.json across worker counts pins that contract.
func FleetSuiteWorkers(seed int64, quick bool, workers int) FleetRegime {
	scale := uint64(1)
	if quick {
		scale = 4
	}
	mcf := mustProfile("mcf")
	namd := mustProfile("namd")
	lbm := mustProfile("lbm")
	povray := mustProfile("povray")
	mcf.Exec.Instructions = 1_000_000 / scale
	namd.Exec.Instructions = 1_000_000 / scale
	lbm.Exec.Instructions = 400_000 / scale
	povray.Exec.Instructions = 400_000 / scale

	mix := []spec.Profile{lbm, lbm, povray, lbm}
	// Offered load is scale-invariant: quick mode shortens every job 4x, so
	// the arrival rate rises 4x over a 4x shorter horizon — the same job
	// count arrives against the same capacity ratio.
	// The rate is set so the diurnal peak fits inside the fleet's
	// insensitive capacity (the background machines plus the sensitive
	// machines's spare LLC domains) but oversubscribes a blind 1/N split:
	// least-pressure can keep every aggressor off the service domains,
	// round-robin's rotation bunches them onto the sensitive machines at
	// peak and overflows onto the domain the service occupies.
	traffic := fleet.Traffic{
		Curve:   fleet.CurveDiurnal,
		Rate:    0.033 * float64(scale),
		Horizon: 4000 / int(scale),
		Mix:     mix,
	}

	// Heterogeneous cluster: the sensitive machines are small (4 cores, 2
	// LLC domains — the spare domain holds just two batch cores), the
	// background machines are big (8 cores, 7 batch cores each). A blind
	// 1/N split therefore overflows the sensitive machines' spare domain at
	// peak and lands aggressors next to the service, while the fleet as a
	// whole still has insensitive capacity for everything — exactly the
	// slack least-pressure exploits.
	const machines = 4
	specs := make([]fleet.MachineSpec, machines)
	for k := range specs {
		svc := fleet.Service{Profile: mcf, Core: 0, Relaunch: true}
		specs[k] = fleet.MachineSpec{Cores: 4, Domains: 2, Workers: workers, Services: []fleet.Service{svc}}
		if k >= machines/2 {
			svc.Profile = namd
			specs[k] = fleet.MachineSpec{Cores: 8, Domains: 2, Workers: workers, Services: []fleet.Service{svc}}
		}
	}

	out := FleetRegime{
		Machines:   machines,
		Sensitive:  spec.ShortName(mcf.Name),
		Background: spec.ShortName(namd.Name),
		Curve:      traffic.Curve.String(),
		Rate:       traffic.Rate,
		Horizon:    traffic.Horizon,
		Seed:       seed,
	}
	for _, p := range mix {
		out.JobMix = append(out.JobMix, spec.ShortName(p.Name))
	}

	configs := []fleetRegimeConfig{
		{name: "round-robin", policy: fleet.PolicyRoundRobin},
		{name: "least-pressure", policy: fleet.PolicyLeastPressure},
		{name: "packed", policy: fleet.PolicyPacked},
	}
	// Per-machine engines run at the batch-favouring end of the §6.2 rule
	// tuning frontier (UsageThresh 800: near-full batch duty, weak local
	// QoS protection — see the -ablation tuning sweep). In this regime a
	// machine will not save its own service from co-located aggressors, so
	// p99 QoS is decided by *where* the fleet puts them. PressureScale is
	// pinned to the default threshold so classifier scores (and with them
	// the least-pressure ranking) keep their usual scale.
	caerCfg := caer.DefaultConfig()
	caerCfg.UsageThresh = 800
	for _, cfg := range configs {
		c := fleet.New(fleet.Config{
			Machines: specs,
			// As in the sched regime suite, the per-machine admission
			// threshold sits above any reachable score: machines admit
			// whenever a core is free (the intra-machine placer still picks
			// the least-interference domain first), so queueing is capacity-
			// driven and the comparison isolates *which machine* gets the
			// job. Threshold-driven per-machine shielding is the sched
			// package's own story.
			Sched: sched.Config{
				Policy:         sched.PolicyContentionAware,
				Heuristic:      caer.HeuristicRule,
				Caer:           caerCfg,
				PressureScale:  caer.DefaultConfig().UsageThresh,
				AdmitThreshold: 100,
			},
			Policy:        cfg.policy,
			Traffic:       traffic,
			Seed:          seed,
			MigratePeriod: cfg.migratePeriod,
			MaxPeriods:    400_000,
		})
		c.Run()
		rep := c.Report()
		lat := rep.MergedLatency(out.Sensitive)
		pr := FleetPolicyResult{
			Name:       cfg.name,
			Policy:     cfg.policy,
			Ticks:      rep.Ticks,
			Arrivals:   rep.Arrivals,
			Completed:  rep.Completed,
			Throughput: rep.Throughput(),
			Migrations: rep.Migrations,
			Requests:   int(lat.N()),
		}
		if lat.N() > 0 {
			pr.P50 = lat.Quantile(0.5)
			pr.P99 = lat.Quantile(0.99)
		}
		if rep.Wait.N() > 0 {
			pr.WaitP50 = rep.Wait.Quantile(0.5)
			pr.WaitP99 = rep.Wait.Quantile(0.99)
			pr.SojournP50 = rep.Sojourn.Quantile(0.5)
			pr.SojournP99 = rep.Sojourn.Quantile(0.99)
		}
		for _, n := range rep.Nodes {
			pr.MachineDispatches = append(pr.MachineDispatches, n.Dispatches)
		}
		out.Policies = append(out.Policies, pr)
	}
	return out
}

// Check enforces the fleet gate: least-pressure placement must strictly
// beat round-robin on the sensitive service's P99 request latency while
// draining the identical arrival schedule (equal admitted throughput).
func (r FleetRegime) Check() error {
	find := func(name string) *FleetPolicyResult {
		for i := range r.Policies {
			if r.Policies[i].Name == name {
				return &r.Policies[i]
			}
		}
		return nil
	}
	rr, lp := find("round-robin"), find("least-pressure")
	if rr == nil || lp == nil {
		return fmt.Errorf("fleet regime missing round-robin or least-pressure row")
	}
	if rr.Completed != rr.Arrivals || lp.Completed != lp.Arrivals {
		return fmt.Errorf("arrival schedule not drained: round-robin %d/%d, least-pressure %d/%d",
			rr.Completed, rr.Arrivals, lp.Completed, lp.Arrivals)
	}
	if rr.Completed != lp.Completed {
		return fmt.Errorf("admitted throughput unequal: round-robin completed %d, least-pressure %d",
			rr.Completed, lp.Completed)
	}
	if rr.Requests == 0 || lp.Requests == 0 {
		return fmt.Errorf("sensitive service recorded no requests: round-robin %d, least-pressure %d",
			rr.Requests, lp.Requests)
	}
	if lp.P99 >= rr.P99 {
		return fmt.Errorf("least-pressure p99 %.0f does not beat round-robin p99 %.0f",
			lp.P99, rr.P99)
	}
	return nil
}

// Table returns the fleet regime comparison as a table.
func (r FleetRegime) Table() *report.Table {
	t := report.NewTable("policy", "completed", "jobs/kperiod",
		"svc_p50", "svc_p99", "wait_p99", "sojourn_p99", "migrations", "dispatches")
	for _, p := range r.Policies {
		t.AddRow(p.Name,
			fmt.Sprintf("%d/%d", p.Completed, p.Arrivals),
			fmt.Sprintf("%.2f", p.Throughput),
			fmt.Sprintf("%.0f", p.P50),
			fmt.Sprintf("%.0f", p.P99),
			fmt.Sprintf("%.0f", p.WaitP99),
			fmt.Sprintf("%.0f", p.SojournP99),
			fmt.Sprintf("%d", p.Migrations),
			fmt.Sprintf("%v", p.MachineDispatches))
	}
	return t
}

// Render writes the fleet regime summary.
func (r FleetRegime) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Fleet regimes (DESIGN.md §14): %d machines — %d x %s (sensitive), %d x %s (background) — %s traffic, rate %.3f over %d periods, jobs %v\n",
		r.Machines, r.Machines/2, r.Sensitive, r.Machines-r.Machines/2, r.Background,
		r.Curve, r.Rate, r.Horizon, r.JobMix); err != nil {
		return err
	}
	return r.Table().Render(w)
}

// WriteJSON emits the fleet regime suite as a machine-readable artifact
// (the BENCH_fleet.json format caer-bench writes for external tooling).
func (r FleetRegime) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
