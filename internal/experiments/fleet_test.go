package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// The suite is a pure function of the seed (pinned by
// TestFleetRegimeSuiteDeterministic), so one quick-mode execution serves
// both the gate assertions and the determinism baseline.
var (
	fleetQuickOnce sync.Once
	fleetQuickRun  FleetRegime
)

func fleetQuick() FleetRegime {
	fleetQuickOnce.Do(func() { fleetQuickRun = FleetSuite(1, true) })
	return fleetQuickRun
}

// TestFleetRegimeSuite is the fleet ISSUE's headline acceptance check:
// least-pressure cross-machine placement must strictly beat round-robin on
// the sensitive service's p99 request latency at equal admitted throughput,
// deterministic per seed — the gate caer-bench -fleet enforces.
func TestFleetRegimeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet regime suite is slow; skipped in -short")
	}
	r := fleetQuick()

	if err := r.Check(); err != nil {
		t.Fatalf("fleet gate: %v", err)
	}
	byName := map[string]FleetPolicyResult{}
	for _, p := range r.Policies {
		byName[p.Name] = p
		if p.Completed != p.Arrivals {
			t.Errorf("%s: completed %d of %d arrivals", p.Name, p.Completed, p.Arrivals)
		}
		if p.Requests == 0 || p.P50 <= 0 || p.P99 < p.P50 {
			t.Errorf("%s: degenerate sensitive-service QoS: requests %d p50 %.0f p99 %.0f",
				p.Name, p.Requests, p.P50, p.P99)
		}
	}
	rr, lp := byName["round-robin"], byName["least-pressure"]
	// The placement signature behind the gate: round-robin spreads jobs
	// over the sensitive machines (the first half), least-pressure keeps
	// nearly all of them on the background machines.
	rrSens, lpSens := 0, 0
	for k := 0; k < r.Machines/2; k++ {
		rrSens += rr.MachineDispatches[k]
		lpSens += lp.MachineDispatches[k]
	}
	if rrSens == 0 {
		t.Errorf("round-robin placed no jobs on sensitive machines: %v", rr.MachineDispatches)
	}
	if lpSens*4 >= rrSens {
		t.Errorf("least-pressure did not steer clear of sensitive machines: %d vs round-robin's %d (%v)",
			lpSens, rrSens, lp.MachineDispatches)
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "least-pressure") {
		t.Errorf("rendered table missing policy rows:\n%s", buf.String())
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded FleetRegime
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded.Machines != r.Machines || len(decoded.Policies) != len(r.Policies) {
		t.Errorf("artifact round-trip mismatch: %+v", decoded)
	}
}

// TestFleetRegimeSuiteDeterministic pins the artifact byte-for-byte across
// repeat runs and across per-machine worker-pool sizes: BENCH_fleet.json is
// a pure function of the seed.
func TestFleetRegimeSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet regime suite is slow; skipped in -short")
	}
	if raceEnabled {
		t.Skip("suite repeats exceed the race budget; internal/fleet pins repeat and worker determinism under -race")
	}
	render := func(r FleetRegime) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a := render(fleetQuick())
	b := render(FleetSuiteWorkers(1, true, 1))
	if !bytes.Equal(a, b) {
		t.Error("repeat run of the fleet suite produced a different artifact")
	}
	c := render(FleetSuiteWorkers(1, true, 4))
	if !bytes.Equal(a, c) {
		t.Error("Workers=4 fleet suite artifact differs from Workers=1")
	}
}
