// Package experiments regenerates every data figure of the paper's
// evaluation (Figures 1, 2, 3, 6, 7, 8, 9 and 10 — Figures 4 and 5 are
// architecture diagrams). A Suite memoizes scenario runs so that figures
// sharing the same underlying experiments (6, 7, 8, 9, 10 all reuse the
// alone / native / CAER / random runs) pay for each run once, and executes
// independent runs in parallel.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"caer/internal/caer"
	"caer/internal/runner"
	"caer/internal/spec"
)

// Suite holds the shared experiment configuration and the run cache.
type Suite struct {
	// Config is the CAER configuration (default caer.DefaultConfig).
	Config caer.Config
	// Seed drives all runs.
	Seed int64
	// Benchmarks are the latency-sensitive applications under test
	// (default: all 21 paper benchmarks).
	Benchmarks []spec.Profile
	// Batch is the adversary (default lbm, as in the paper).
	Batch spec.Profile
	// Parallelism bounds concurrent scenario runs (default NumCPU).
	Parallelism int

	mu    sync.Mutex
	cache map[runKey]*cacheEntry
	// runFn executes one scenario; nil means runner.Run. Tests replace it
	// to count and script executions.
	runFn func(runner.Scenario) runner.Result
}

type runKey struct {
	bench     string
	mode      runner.Mode
	heuristic caer.HeuristicKind
}

// cacheEntry is a singleflight slot: the goroutine that inserts it runs the
// scenario and closes done; everyone else who finds it waits on done and
// reads res. This way concurrent Result calls for the same key — routine
// under Prewarm's worker pool — execute the scenario exactly once instead
// of racing between the cache miss and the cache fill.
type cacheEntry struct {
	done chan struct{}
	res  runner.Result
}

// NewSuite returns a suite over the full paper benchmark set.
func NewSuite() *Suite { return &Suite{} }

func (s *Suite) defaults() {
	if s.Config.WindowSize == 0 {
		s.Config = caer.DefaultConfig()
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = spec.All()
	}
	if s.Batch.Name == "" {
		s.Batch = spec.LBM()
	}
	if s.Parallelism == 0 {
		s.Parallelism = runtime.NumCPU()
	}
	if s.cache == nil {
		s.cache = make(map[runKey]*cacheEntry)
	}
	if s.runFn == nil {
		s.runFn = runner.Run
	}
}

// Result runs (or recalls) one scenario for the given benchmark. Concurrent
// calls for the same scenario share a single execution.
func (s *Suite) Result(bench spec.Profile, mode runner.Mode, heuristic caer.HeuristicKind) runner.Result {
	s.mu.Lock()
	s.defaults()
	key := runKey{bench.Name, mode, heuristic}
	if e, ok := s.cache[key]; ok {
		s.mu.Unlock()
		<-e.done
		return e.res
	}
	e := &cacheEntry{done: make(chan struct{})}
	s.cache[key] = e
	run := s.runFn
	scenario := runner.Scenario{
		Latency:   bench,
		Batch:     s.Batch,
		Mode:      mode,
		Heuristic: heuristic,
		Config:    s.Config,
		Seed:      s.Seed,
	}
	s.mu.Unlock()

	// Close done even if the run panics, so waiters aren't stranded while
	// the panic unwinds.
	defer close(e.done)
	e.res = run(scenario)
	if !e.res.Completed {
		panic(fmt.Sprintf("experiments: %s/%v did not complete", bench.Name, mode))
	}
	return e.res
}

// modeRun identifies one scenario flavour used by the figures.
type modeRun struct {
	mode      runner.Mode
	heuristic caer.HeuristicKind
}

var (
	runAlone   = modeRun{runner.ModeAlone, 0}
	runColo    = modeRun{runner.ModeNativeColo, 0}
	runShutter = modeRun{runner.ModeCAER, caer.HeuristicShutter}
	runRule    = modeRun{runner.ModeCAER, caer.HeuristicRule}
	runRandom  = modeRun{runner.ModeCAER, caer.HeuristicRandom}
)

// Prewarm executes the given scenario flavours for every benchmark in
// parallel, filling the cache. Figures then assemble instantly.
func (s *Suite) Prewarm(runs ...modeRun) {
	s.mu.Lock()
	s.defaults()
	benchmarks := s.Benchmarks
	par := s.Parallelism
	s.mu.Unlock()

	type job struct {
		bench spec.Profile
		run   modeRun
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s.Result(j.bench, j.run.mode, j.run.heuristic)
			}
		}()
	}
	for _, b := range benchmarks {
		for _, r := range runs {
			jobs <- job{b, r}
		}
	}
	close(jobs)
	wg.Wait()
}

// PrewarmAll fills the cache for every flavour any figure needs.
func (s *Suite) PrewarmAll() {
	s.Prewarm(runAlone, runColo, runShutter, runRule, runRandom)
}

// benchNames returns short names of the suite's benchmarks, figure order.
func (s *Suite) benchNames() []string {
	s.mu.Lock()
	s.defaults()
	defer s.mu.Unlock()
	out := make([]string, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		out[i] = b.Name
	}
	return out
}

// rankBySensitivity returns the suite's benchmarks ordered by descending
// native co-location slowdown (the §6.3 cross-core interference
// sensitivity ranking used by Figures 9 and 10). The adversary itself is
// excluded from the ranking when it appears among the benchmarks, since
// its sensitivity is measured against itself.
func (s *Suite) rankBySensitivity() []spec.Profile {
	s.mu.Lock()
	s.defaults()
	benchmarks := make([]spec.Profile, len(s.Benchmarks))
	copy(benchmarks, s.Benchmarks)
	batchName := s.Batch.Name
	s.mu.Unlock()

	s.Prewarm(runAlone, runColo)
	type ranked struct {
		p  spec.Profile
		sd float64
	}
	var rs []ranked
	for _, b := range benchmarks {
		if b.Name == batchName {
			continue
		}
		alone := s.Result(b, runner.ModeAlone, 0)
		colo := s.Result(b, runner.ModeNativeColo, 0)
		rs = append(rs, ranked{b, runner.Slowdown(colo, alone)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sd > rs[j].sd })
	out := make([]spec.Profile, len(rs))
	for i, r := range rs {
		out[i] = r.p
	}
	return out
}
