package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caer/internal/runner"
	"caer/internal/spec"
)

// TestSuiteResultSingleflight is the regression test for the duplicate-run
// race: two goroutines both missing the cache between unlock and refill
// used to execute the same scenario twice. Now the loser of the insert race
// must wait for the winner's result instead of re-running.
func TestSuiteResultSingleflight(t *testing.T) {
	var runs atomic.Int64
	s := NewSuite()
	s.runFn = func(sc runner.Scenario) runner.Result {
		runs.Add(1)
		// Hold the "running" state open long enough that every caller
		// overlaps it — under the old code each of them would re-run.
		time.Sleep(20 * time.Millisecond)
		return runner.Result{Scenario: sc, Completed: true, Periods: 42}
	}
	bench := spec.LBM()

	const callers = 16
	results := make([]runner.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Result(bench, runner.ModeAlone, 0)
		}(i)
	}
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("runner executed %d times for one scenario, want 1", n)
	}
	for i, r := range results {
		if r.Periods != 42 {
			t.Fatalf("caller %d got %+v, want the shared result", i, r)
		}
	}

	// A different scenario still triggers its own run, and a repeat of the
	// first is served from cache.
	s.Result(bench, runner.ModeNativeColo, 0)
	s.Result(bench, runner.ModeAlone, 0)
	if n := runs.Load(); n != 2 {
		t.Fatalf("runner executed %d times across two scenarios, want 2", n)
	}
}

func TestSuiteResultPanicsOnIncompleteRun(t *testing.T) {
	s := NewSuite()
	s.runFn = func(sc runner.Scenario) runner.Result {
		return runner.Result{Scenario: sc, Completed: false}
	}
	defer func() {
		if recover() == nil {
			t.Error("incomplete run did not panic")
		}
	}()
	s.Result(spec.LBM(), runner.ModeAlone, 0)
}
