package experiments

import (
	"strings"
	"testing"

	"caer/internal/caer"
	"caer/internal/spec"
)

func TestMultiAppVisionShape(t *testing.T) {
	s := smallSuite(t)
	mcf := s.Benchmarks[0] // shrunken mcf
	soplex, ok := spec.ByName("soplex")
	if !ok {
		t.Fatal("soplex missing")
	}
	soplex.Exec.Instructions = 300_000
	lbm := spec.LBM()

	m := s.MultiApp([2]spec.Profile{mcf, soplex}, [2]spec.Profile{lbm, lbm}, caer.HeuristicRule)

	if m.AlonePeriods == 0 || m.ColoPeriods == 0 || m.CAERPeriods == 0 {
		t.Fatalf("zero periods somewhere: %+v", m)
	}
	// Native 2+2 co-location hurts the latency pair badly; CAER recovers
	// most of it while keeping some batch progress.
	if m.ColoSlowdown <= 1.1 {
		t.Errorf("native 2+2 slowdown = %.3f, want substantial", m.ColoSlowdown)
	}
	if m.CAERSlowdown >= m.ColoSlowdown {
		t.Errorf("CAER (%.3f) did not improve on native (%.3f)", m.CAERSlowdown, m.ColoSlowdown)
	}
	if m.CAERSlowdown < 1 {
		t.Errorf("CAER slowdown %.3f below 1", m.CAERSlowdown)
	}
	if m.ColoBatchDuty < 0.95 {
		t.Errorf("native batch duty = %.3f, want ~1", m.ColoBatchDuty)
	}
	if m.CAERBatchDuty <= 0 || m.CAERBatchDuty >= 1 {
		t.Errorf("CAER batch duty = %.3f, want in (0,1)", m.CAERBatchDuty)
	}
	if m.CPositive == 0 {
		t.Error("no contention detected in a heavily contended 2+2 mix")
	}
	var sb strings.Builder
	if err := m.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 4") || !strings.Contains(sb.String(), "verdicts") {
		t.Errorf("render incomplete:\n%s", sb.String())
	}
	if m.Table().Len() != 3 {
		t.Errorf("table rows = %d, want 3", m.Table().Len())
	}
}
