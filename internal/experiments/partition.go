package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/sched"
	"caer/internal/spec"
)

// PartitionConfigResult is one response family's outcome in the partition
// regime suite: the same latency service and job mix on the same machine,
// differing only in how contention is answered — throttling the batch set
// (the paper's lever) or resizing LLC way-partitions (LFOC-style), or
// both.
type PartitionConfigResult struct {
	// Name labels the configuration.
	Name      string
	Heuristic string
	Response  string

	// Periods is the latency app's completion time; QoSDegradation is its
	// slowdown versus the jobs-free baseline on the identical machine.
	Periods        uint64
	QoSDegradation float64

	// JobsSubmitted / JobsCompleted pin the admitted batch throughput the
	// comparison holds equal: every response must drain the same job set.
	JobsSubmitted, JobsCompleted int
	// BatchMakespan is the period the last batch job completed in — the
	// batch-side cost of the response (throttling stretches it; pure
	// partitioning never pauses anyone).
	BatchMakespan uint64
	// BatchInstructions totals the batch side's retired work.
	BatchInstructions uint64
	// BatchDuty is the engine-directive run fraction. Under the partition
	// response the directive confines instead of pausing, so duty there
	// reads as the fraction of job-periods spent unconfined.
	BatchDuty float64
	// CPositive counts contention verdicts across the run's engines.
	CPositive uint64
}

// PartitionRegime is the partition regime suite's result: one
// latency-sensitive service plus a stream of LLC aggressors on a single
// shared-LLC domain, compared across the response family at equal admitted
// throughput (DESIGN.md §16).
type PartitionRegime struct {
	Latency             string
	JobMix              []string
	Domains             int
	Cores               int
	Seed                int64
	ProtectedWaysPerApp int
	ConfinedWays        int

	// BaselinePeriods is the latency app's completion time with no jobs
	// submitted (and no partitions applied).
	BaselinePeriods uint64
	Configs         []PartitionConfigResult
}

// partitionConfig is one suite row.
type partitionConfig struct {
	name      string
	heuristic caer.HeuristicKind
	response  sched.ResponseKind
}

// PartitionSuite runs the response-family head-to-head (DESIGN.md §16):
// omnetpp — whose scattered heap references make it maximally fragile to
// LLC eviction — as the latency-sensitive service sharing one 3-core LLC
// domain with capacity-thief jobs (soplex and astar, large uniform
// working sets with little streaming) flowing through the admission
// queue; identical seeds and job sets across configurations, so the only
// variable is the response. This is the regime cache partitioning is for:
// the damage is capacity theft, not bandwidth, so confining the thieves
// protects the service without idling anyone. (A pure-bandwidth adversary
// like lbm is the converse regime — only throttling relieves a saturated
// memory channel — which is why the hybrid row exists.) quick shrinks
// instruction counts 4x.
func PartitionSuite(seed int64, quick bool) PartitionRegime {
	return PartitionSuiteWorkers(seed, quick, 1)
}

// PartitionSuiteWorkers is PartitionSuite with the machine's domain-stepper
// worker pool sized to workers. Results are bit-identical for every worker
// count; workers is deliberately NOT recorded in the artifact so
// byte-comparing BENCH_partition.json across worker counts pins the
// determinism contract.
func PartitionSuiteWorkers(seed int64, quick bool, workers int) PartitionRegime {
	scale := uint64(1)
	if quick {
		scale = 4
	}
	omnetpp := mustProfile("omnetpp")
	soplex := mustProfile("soplex")
	astar := mustProfile("astar")
	omnetpp.Exec.Instructions /= scale
	soplex.Exec.Instructions = 500_000 / scale
	astar.Exec.Instructions = 500_000 / scale

	jobs := []spec.Profile{soplex, astar, soplex}
	cluster := sched.ClusterConfig{ProtectedWaysPerApp: 8, ConfinedWays: 4}

	out := PartitionRegime{
		Latency:             spec.ShortName(omnetpp.Name),
		Domains:             1,
		Cores:               3,
		Seed:                seed,
		ProtectedWaysPerApp: cluster.ProtectedWaysPerApp,
		ConfinedWays:        cluster.ConfinedWays,
	}
	for _, j := range jobs {
		out.JobMix = append(out.JobMix, spec.ShortName(j.Name))
	}

	scenario := func(cfg partitionConfig, jobSet []spec.Profile) runner.Scenario {
		return runner.Scenario{
			Latency:   omnetpp,
			Mode:      runner.ModeScheduled,
			Heuristic: cfg.heuristic,
			Seed:      seed,
			Domains:   1,
			Cores:     3,
			Jobs:      jobSet,
			// Admission above any reachable score: queueing is purely
			// capacity-driven, so every response admits identically and the
			// comparison isolates the reaction, not the placement.
			Sched: sched.Config{
				AdmitThreshold: 100,
				AgingBound:     1200,
				Response:       cfg.response,
				Cluster:        cluster,
			},
			MaxPeriods: 200_000,
			Workers:    workers,
		}
	}

	baseline := runner.Run(scenario(partitionConfig{heuristic: caer.HeuristicRule}, nil))
	out.BaselinePeriods = baseline.Periods

	configs := []partitionConfig{
		{name: "red-light-green-light", heuristic: caer.HeuristicShutter, response: sched.ResponseThrottle},
		{name: "soft-lock", heuristic: caer.HeuristicRule, response: sched.ResponseThrottle},
		{name: "partition", heuristic: caer.HeuristicRule, response: sched.ResponsePartition},
		{name: "hybrid", heuristic: caer.HeuristicRule, response: sched.ResponseHybrid},
	}
	for _, cfg := range configs {
		res := runner.Run(scenario(cfg, jobs))
		pr := PartitionConfigResult{
			Name:              cfg.name,
			Heuristic:         cfg.heuristic.String(),
			Response:          cfg.response.String(),
			Periods:           res.Periods,
			QoSDegradation:    float64(res.Periods) / float64(out.BaselinePeriods),
			JobsSubmitted:     len(jobs),
			JobsCompleted:     res.JobsCompleted,
			BatchInstructions: res.BatchInstructions,
			BatchDuty:         res.BatchDuty,
			CPositive:         res.CPositive,
		}
		for _, br := range res.BatchResults {
			if br.DonePeriod > pr.BatchMakespan {
				pr.BatchMakespan = br.DonePeriod
			}
		}
		out.Configs = append(out.Configs, pr)
	}
	return out
}

// Config returns the named configuration's result.
func (r PartitionRegime) Config(name string) (PartitionConfigResult, bool) {
	for _, c := range r.Configs {
		if c.Name == name {
			return c, true
		}
	}
	return PartitionConfigResult{}, false
}

// Check asserts the suite's headline claim (the CI gate): partitioning
// strictly beats both pure-throttling responses on sensitive-app QoS
// degradation while sacrificing less batch throughput (earlier batch
// makespan), at equal admitted throughput (every configuration drains the
// whole job set).
func (r PartitionRegime) Check() error {
	part, ok := r.Config("partition")
	if !ok {
		return fmt.Errorf("partition regime: no partition configuration in suite")
	}
	for _, c := range r.Configs {
		if c.JobsCompleted != c.JobsSubmitted {
			return fmt.Errorf("partition regime: %s completed %d/%d jobs (throughput not equal)",
				c.Name, c.JobsCompleted, c.JobsSubmitted)
		}
	}
	for _, name := range []string{"red-light-green-light", "soft-lock"} {
		thr, ok := r.Config(name)
		if !ok {
			return fmt.Errorf("partition regime: no %s configuration in suite", name)
		}
		if part.QoSDegradation >= thr.QoSDegradation {
			return fmt.Errorf("partition regime: partition QoS degradation %.4f does not strictly beat %s at %.4f",
				part.QoSDegradation, name, thr.QoSDegradation)
		}
		if part.BatchMakespan > thr.BatchMakespan {
			return fmt.Errorf("partition regime: partition batch makespan %d exceeds %s at %d (sacrifices more batch throughput)",
				part.BatchMakespan, name, thr.BatchMakespan)
		}
	}
	return nil
}

// Table returns the regime comparison as a table.
func (r PartitionRegime) Table() *report.Table {
	t := report.NewTable("response", "heuristic", "qos_degradation",
		"jobs_completed", "batch_makespan", "batch_duty", "verdicts")
	for _, c := range r.Configs {
		t.AddRow(c.Name, c.Heuristic,
			fmt.Sprintf("%.4f", c.QoSDegradation),
			fmt.Sprintf("%d/%d", c.JobsCompleted, c.JobsSubmitted),
			fmt.Sprintf("%d", c.BatchMakespan),
			report.Percent(c.BatchDuty),
			fmt.Sprintf("%d", c.CPositive))
	}
	return t
}

// Render writes the regime summary.
func (r PartitionRegime) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Partition regimes (DESIGN.md §16): %s service sharing %d cores/1 LLC with jobs %v\nbaseline (no jobs): %d periods; protected %d ways/app, confined %d ways\n",
		r.Latency, r.Cores, r.JobMix, r.BaselinePeriods, r.ProtectedWaysPerApp, r.ConfinedWays); err != nil {
		return err
	}
	return r.Table().Render(w)
}

// WriteJSON emits the regime suite as a machine-readable artifact (the
// BENCH_partition.json format caer-bench writes for external tooling).
func (r PartitionRegime) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
