package experiments

import (
	"strings"
	"testing"

	"caer/internal/runner"
	"caer/internal/spec"
)

// smallSuite returns a suite over three representative benchmarks with
// shrunken instruction counts so the whole figure set runs in about a
// second: one very sensitive (mcf), one moderate (astar), one insensitive
// (namd).
func smallSuite(t *testing.T) *Suite {
	t.Helper()
	names := map[string]uint64{"429.mcf": 300_000, "473.astar": 500_000, "444.namd": 1_200_000}
	var benchmarks []spec.Profile
	for _, n := range []string{"429.mcf", "473.astar", "444.namd"} {
		p, ok := spec.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %s", n)
		}
		p.Exec.Instructions = names[n]
		benchmarks = append(benchmarks, p)
	}
	return &Suite{Benchmarks: benchmarks, Seed: 3}
}

func TestSuiteResultMemoized(t *testing.T) {
	s := smallSuite(t)
	b := s.Benchmarks[2] // namd: fastest
	r1 := s.Result(b, runner.ModeAlone, 0)
	r2 := s.Result(b, runner.ModeAlone, 0)
	if r1.Periods != r2.Periods || r1.LatencyMisses != r2.LatencyMisses {
		t.Error("memoized results differ")
	}
	if len(s.cache) != 1 {
		t.Errorf("cache has %d entries, want 1", len(s.cache))
	}
}

func TestFigure1ShapeHolds(t *testing.T) {
	s := smallSuite(t)
	f := s.Figure1()
	if len(f.Benchmarks) != 3 || len(f.Slowdowns) != 3 {
		t.Fatalf("figure has %d benchmarks", len(f.Benchmarks))
	}
	byName := map[string]float64{}
	for i, b := range f.Benchmarks {
		byName[b] = f.Slowdowns[i]
	}
	if byName["429.mcf"] <= byName["444.namd"] {
		t.Errorf("mcf (%.3f) not more sensitive than namd (%.3f)", byName["429.mcf"], byName["444.namd"])
	}
	if byName["444.namd"] > 1.1 {
		t.Errorf("namd slowdown %.3f, want near 1", byName["444.namd"])
	}
	if f.Mean <= 1 {
		t.Errorf("mean slowdown %.3f, want > 1", f.Mean)
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 1") || !strings.Contains(sb.String(), "mean") {
		t.Error("render missing title or mean")
	}
	if f.Table().Len() != 4 {
		t.Errorf("table rows = %d, want 4 (3 benchmarks + mean)", f.Table().Len())
	}
}

func TestFigure2MissesIncreaseForSensitive(t *testing.T) {
	s := smallSuite(t)
	f := s.Figure2()
	for i, b := range f.Benchmarks {
		if b == "429.mcf" && f.MissesColo[i] <= f.MissesAlone[i] {
			t.Errorf("mcf misses did not increase: %.0f -> %.0f", f.MissesAlone[i], f.MissesColo[i])
		}
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if f.Table().Len() != 3 {
		t.Errorf("table rows = %d", f.Table().Len())
	}
}

func TestFigure3PhasesAndInverseCorrelation(t *testing.T) {
	s := smallSuite(t)
	f := s.Figure3(300, "483.xalancbmk", "429.mcf")
	if len(f.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(f.Series))
	}
	for _, srs := range f.Series {
		if len(srs.Misses) == 0 || len(srs.Misses) != len(srs.Retired) {
			t.Fatalf("%s: bad series lengths %d/%d", srs.Benchmark, len(srs.Misses), len(srs.Retired))
		}
		// The paper's claim: LLC misses and retirement rate are inversely
		// related for phase-heavy benchmarks.
		if srs.Correlation >= -0.5 {
			t.Errorf("%s: correlation = %.3f, want strongly negative", srs.Benchmark, srs.Correlation)
		}
		// Phases: the miss series must actually vary (quiet and heavy).
		lo, hi := srs.Misses[0], srs.Misses[0]
		for _, v := range srs.Misses {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi < 4*(lo+1) {
			t.Errorf("%s: miss series shows no phases (min %.0f max %.0f)", srs.Benchmark, lo, hi)
		}
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "correlation") {
		t.Error("render missing correlation")
	}
}

func TestFigure3UnknownBenchmarkPanics(t *testing.T) {
	s := smallSuite(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown benchmark did not panic")
		}
	}()
	s.Figure3(10, "999.nope")
}

func TestFigure6CAERBeatsNativeColo(t *testing.T) {
	s := smallSuite(t)
	f := s.Figure6()
	if f.MeanShutter >= f.MeanColo {
		t.Errorf("shutter mean %.3f not below colo mean %.3f", f.MeanShutter, f.MeanColo)
	}
	if f.MeanRule >= f.MeanColo {
		t.Errorf("rule mean %.3f not below colo mean %.3f", f.MeanRule, f.MeanColo)
	}
	for i, b := range f.Benchmarks {
		if f.Shutter[i] < 1-1e-9 || f.Rule[i] < 1-1e-9 {
			t.Errorf("%s: CAER faster than alone (shutter %.3f rule %.3f)", b, f.Shutter[i], f.Rule[i])
		}
	}
	if f.Table().Len() != 4 {
		t.Errorf("table rows = %d", f.Table().Len())
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFigure7UtilizationGainedInRange(t *testing.T) {
	s := smallSuite(t)
	f := s.Figure7()
	for i, b := range f.Benchmarks {
		for _, v := range []float64{f.Shutter[i], f.Rule[i]} {
			if v <= 0 || v > 1 {
				t.Errorf("%s: utilization gained %.3f outside (0,1]", b, v)
			}
		}
	}
	if f.MeanShutter <= 0 || f.MeanRule <= 0 {
		t.Error("mean utilization gained not positive")
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFigure8InterferenceEliminatedPositiveForSensitive(t *testing.T) {
	s := smallSuite(t)
	f := s.Figure8()
	found := false
	for i, b := range f.Benchmarks {
		if b == "429.mcf" {
			found = true
			if f.Shutter[i] <= 0 || f.Rule[i] <= 0 {
				t.Errorf("mcf interference eliminated: shutter %.3f rule %.3f, want positive", f.Shutter[i], f.Rule[i])
			}
		}
	}
	if !found {
		t.Error("mcf missing from Figure 8 (should have a clear native penalty)")
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFigureAccuracySigns(t *testing.T) {
	s := smallSuite(t)
	// With 3 benchmarks, take the 1 most and 1 least sensitive.
	most := s.FigureAccuracy(true, 1)
	least := s.FigureAccuracy(false, 1)
	if len(most.Benchmarks) != 1 || len(least.Benchmarks) != 1 {
		t.Fatalf("accuracy figures have %d/%d benchmarks", len(most.Benchmarks), len(least.Benchmarks))
	}
	if most.Benchmarks[0] != "429.mcf" {
		t.Errorf("most sensitive = %s, want mcf", most.Benchmarks[0])
	}
	if least.Benchmarks[0] != "444.namd" {
		t.Errorf("least sensitive = %s, want namd", least.Benchmarks[0])
	}
	// §6.4: a correct heuristic sacrifices more utilization than random for
	// sensitive apps (A < 0) and gains at least as much for insensitive
	// ones (A >= 0).
	if most.Rule[0] >= 0 {
		t.Errorf("rule accuracy for mcf = %+.3f, want negative", most.Rule[0])
	}
	if least.Rule[0] < 0 {
		t.Errorf("rule accuracy for namd = %+.3f, want non-negative", least.Rule[0])
	}
	if least.Shutter[0] < 0 {
		t.Errorf("shutter accuracy for namd = %+.3f, want non-negative", least.Shutter[0])
	}
	var sb strings.Builder
	if err := most.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 9") {
		t.Error("most-sensitive render missing Figure 9 title")
	}
	sb.Reset()
	if err := least.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Error("least-sensitive render missing Figure 10 title")
	}
	if most.Table().Len() != 2 || least.Table().Len() != 2 {
		t.Error("accuracy tables wrong size")
	}
}

func TestRankBySensitivityExcludesAdversary(t *testing.T) {
	s := smallSuite(t)
	lbm := spec.LBM()
	lbm.Exec.Instructions = 300_000
	s.Benchmarks = append(s.Benchmarks, lbm)
	ranked := s.rankBySensitivity()
	for _, p := range ranked {
		if p.Name == "470.lbm" {
			t.Error("adversary included in its own sensitivity ranking")
		}
	}
	if len(ranked) != 3 {
		t.Errorf("ranked %d benchmarks, want 3", len(ranked))
	}
}
