package experiments

import (
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/spec"
	"caer/internal/stats"
)

// Figure1 reproduces the paper's Figure 1: per-benchmark slowdown when
// co-located with the adversary versus running alone.
type Figure1 struct {
	Benchmarks []string
	Slowdowns  []float64
	Mean       float64
}

// Figure1 runs (or recalls) the alone and native-co-location scenarios.
func (s *Suite) Figure1() Figure1 {
	s.Prewarm(runAlone, runColo)
	var f Figure1
	for _, b := range s.Benchmarks {
		alone := s.Result(b, runner.ModeAlone, 0)
		colo := s.Result(b, runner.ModeNativeColo, 0)
		f.Benchmarks = append(f.Benchmarks, b.Name)
		f.Slowdowns = append(f.Slowdowns, runner.Slowdown(colo, alone))
	}
	f.Mean = stats.Mean(f.Slowdowns)
	return f
}

// Render writes the figure as a bar chart plus mean row.
func (f Figure1) Render(w io.Writer) error {
	labels := append(append([]string{}, f.Benchmarks...), "mean")
	values := append(append([]float64{}, f.Slowdowns...), f.Mean)
	return report.BarChart{
		Title:  "Figure 1: slowdown due to co-location with the contender (1.0 = no interference)",
		Min:    1.0,
		Format: "%.3fx",
	}.Render(w, labels, report.Series{Name: "colo", Values: values})
}

// Table returns the figure's data as a table (also used for CSV export).
func (f Figure1) Table() *report.Table {
	t := report.NewTable("benchmark", "slowdown")
	for i, b := range f.Benchmarks {
		t.AddRow(b, fmt.Sprintf("%.4f", f.Slowdowns[i]))
	}
	t.AddRow("mean", fmt.Sprintf("%.4f", f.Mean))
	return t
}

// Figure2 reproduces the paper's Figure 2: total last-level-cache misses
// running alone versus with the contender.
type Figure2 struct {
	Benchmarks  []string
	MissesAlone []float64
	MissesColo  []float64
}

// Figure2 compares the LLC miss totals of the Figure 1 runs.
func (s *Suite) Figure2() Figure2 {
	s.Prewarm(runAlone, runColo)
	var f Figure2
	for _, b := range s.Benchmarks {
		alone := s.Result(b, runner.ModeAlone, 0)
		colo := s.Result(b, runner.ModeNativeColo, 0)
		f.Benchmarks = append(f.Benchmarks, b.Name)
		f.MissesAlone = append(f.MissesAlone, float64(alone.LatencyMisses))
		f.MissesColo = append(f.MissesColo, float64(colo.LatencyMisses))
	}
	return f
}

// Render writes the figure as a grouped bar chart.
func (f Figure2) Render(w io.Writer) error {
	return report.BarChart{
		Title:  "Figure 2: last-level cache misses, alone vs with contender",
		Format: "%.0f",
	}.Render(w, f.Benchmarks,
		report.Series{Name: "alone", Values: f.MissesAlone},
		report.Series{Name: "w/ contender", Values: f.MissesColo},
	)
}

// Table returns the figure's data as a table.
func (f Figure2) Table() *report.Table {
	t := report.NewTable("benchmark", "misses_alone", "misses_contender", "increase")
	for i, b := range f.Benchmarks {
		ratio := 0.0
		if f.MissesAlone[i] > 0 {
			ratio = f.MissesColo[i] / f.MissesAlone[i]
		}
		t.AddRow(b,
			fmt.Sprintf("%.0f", f.MissesAlone[i]),
			fmt.Sprintf("%.0f", f.MissesColo[i]),
			fmt.Sprintf("%.2fx", ratio))
	}
	return t
}

// Figure3 reproduces the paper's Figure 3: per-period LLC-miss and
// instruction-retirement time series for benchmarks with clear miss
// phases, demonstrating their inverse relationship.
type Figure3 struct {
	Series []Figure3Series
}

// Figure3Series is one benchmark's paired time series.
type Figure3Series struct {
	Benchmark string
	Misses    []float64
	Retired   []float64
	// Correlation is the Pearson correlation between the two series; the
	// paper's claim is that it is strongly negative.
	Correlation float64
}

// Figure3 samples the named benchmarks (default: the paper's xalancbmk and
// mcf) running alone, at most maxPeriods periods (0 = to completion).
func (s *Suite) Figure3(maxPeriods int, names ...string) Figure3 {
	s.mu.Lock()
	s.defaults()
	seed := s.Seed
	s.mu.Unlock()
	if len(names) == 0 {
		names = []string{"483.xalancbmk", "429.mcf"}
	}
	var f Figure3
	for _, n := range names {
		p, ok := spec.ByName(n)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown benchmark %q", n))
		}
		f.Series = append(f.Series, sampleAlone(p, seed, maxPeriods))
	}
	return f
}

// sampleAlone runs one benchmark alone with a recording per-period sampler.
func sampleAlone(p spec.Profile, seed int64, maxPeriods int) Figure3Series {
	m := machine.New(machine.Config{Cores: 2})
	proc := p.NewProcess(0, seed)
	m.Bind(0, proc)
	sampler := pmu.NewSampler(pmu.New(m, 0), []pmu.Event{pmu.EventLLCMisses, pmu.EventInstrRetired}, true)
	for i := 0; (maxPeriods == 0 || i < maxPeriods) && !proc.Done(); i++ {
		m.RunPeriod()
		sampler.Probe()
	}
	misses := sampler.Series(pmu.EventLLCMisses)
	retired := sampler.Series(pmu.EventInstrRetired)
	return Figure3Series{
		Benchmark:   p.Name,
		Misses:      misses,
		Retired:     retired,
		Correlation: stats.Correlation(misses, retired),
	}
}

// Render writes each benchmark's paired sparklines and correlation.
func (f Figure3) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Figure 3: per-period LLC misses vs instruction retirement (alone)"); err != nil {
		return err
	}
	for _, srs := range f.Series {
		if _, err := fmt.Fprintf(w, "%s (%d periods, correlation %.3f)\n  LLC misses   %s\n  instr retired %s\n",
			srs.Benchmark, len(srs.Misses), srs.Correlation,
			report.Sparkline(srs.Misses, 80), report.Sparkline(srs.Retired, 80)); err != nil {
			return err
		}
	}
	return nil
}

// Figure6 reproduces the paper's Figure 6: execution-time penalty under
// native co-location versus CAER with each heuristic.
type Figure6 struct {
	Benchmarks                      []string
	Colo                            []float64 // native co-location slowdown
	Shutter                         []float64 // CAER burst-shutter slowdown
	Rule                            []float64 // CAER rule-based slowdown
	MeanColo, MeanShutter, MeanRule float64
}

// Figure6 runs the full three-way comparison.
func (s *Suite) Figure6() Figure6 {
	s.Prewarm(runAlone, runColo, runShutter, runRule)
	var f Figure6
	for _, b := range s.Benchmarks {
		alone := s.Result(b, runner.ModeAlone, 0)
		f.Benchmarks = append(f.Benchmarks, b.Name)
		f.Colo = append(f.Colo, runner.Slowdown(s.Result(b, runner.ModeNativeColo, 0), alone))
		f.Shutter = append(f.Shutter, runner.Slowdown(s.Result(b, runner.ModeCAER, caer.HeuristicShutter), alone))
		f.Rule = append(f.Rule, runner.Slowdown(s.Result(b, runner.ModeCAER, caer.HeuristicRule), alone))
	}
	f.MeanColo = stats.Mean(f.Colo)
	f.MeanShutter = stats.Mean(f.Shutter)
	f.MeanRule = stats.Mean(f.Rule)
	return f
}

// Render writes the grouped bar chart with a mean group.
func (f Figure6) Render(w io.Writer) error {
	labels := append(append([]string{}, f.Benchmarks...), "mean")
	return report.BarChart{
		Title:  "Figure 6: execution-time penalty due to cross-core interference",
		Min:    1.0,
		Format: "%.3fx",
	}.Render(w, labels,
		report.Series{Name: "colo", Values: append(append([]float64{}, f.Colo...), f.MeanColo)},
		report.Series{Name: "caer-shutter", Values: append(append([]float64{}, f.Shutter...), f.MeanShutter)},
		report.Series{Name: "caer-rule", Values: append(append([]float64{}, f.Rule...), f.MeanRule)},
	)
}

// Table returns the figure's data as a table.
func (f Figure6) Table() *report.Table {
	t := report.NewTable("benchmark", "colo", "caer_shutter", "caer_rule")
	for i, b := range f.Benchmarks {
		t.AddRow(b,
			fmt.Sprintf("%.4f", f.Colo[i]),
			fmt.Sprintf("%.4f", f.Shutter[i]),
			fmt.Sprintf("%.4f", f.Rule[i]))
	}
	t.AddRow("mean",
		fmt.Sprintf("%.4f", f.MeanColo),
		fmt.Sprintf("%.4f", f.MeanShutter),
		fmt.Sprintf("%.4f", f.MeanRule))
	return t
}

// Figure7 reproduces the paper's Figure 7: utilization gained by allowing
// co-location under CAER (higher is better).
type Figure7 struct {
	Benchmarks            []string
	Shutter               []float64
	Rule                  []float64
	MeanShutter, MeanRule float64
}

// Figure7 extracts the batch duty cycles of the CAER runs.
func (s *Suite) Figure7() Figure7 {
	s.Prewarm(runShutter, runRule)
	var f Figure7
	for _, b := range s.Benchmarks {
		f.Benchmarks = append(f.Benchmarks, b.Name)
		f.Shutter = append(f.Shutter, runner.UtilizationGained(s.Result(b, runner.ModeCAER, caer.HeuristicShutter)))
		f.Rule = append(f.Rule, runner.UtilizationGained(s.Result(b, runner.ModeCAER, caer.HeuristicRule)))
	}
	f.MeanShutter = stats.Mean(f.Shutter)
	f.MeanRule = stats.Mean(f.Rule)
	return f
}

// Render writes the grouped bar chart with a mean group.
func (f Figure7) Render(w io.Writer) error {
	labels := append(append([]string{}, f.Benchmarks...), "mean")
	return report.BarChart{
		Title:  "Figure 7: utilization gained (higher is better)",
		Max:    1.0,
		Format: "%.1f%%",
	}.Render(w, labels,
		report.Series{Name: "caer-shutter", Values: percentValues(append(append([]float64{}, f.Shutter...), f.MeanShutter))},
		report.Series{Name: "caer-rule", Values: percentValues(append(append([]float64{}, f.Rule...), f.MeanRule))},
	)
}

// Table returns the figure's data as a table.
func (f Figure7) Table() *report.Table {
	t := report.NewTable("benchmark", "shutter_util_gained", "rule_util_gained")
	for i, b := range f.Benchmarks {
		t.AddRow(b, report.Percent(f.Shutter[i]), report.Percent(f.Rule[i]))
	}
	t.AddRow("mean", report.Percent(f.MeanShutter), report.Percent(f.MeanRule))
	return t
}

func percentValues(fracs []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = f * 100
	}
	return out
}

// Figure8 reproduces the paper's Figure 8: percentage of the cross-core
// interference penalty eliminated by CAER (higher is better).
type Figure8 struct {
	Benchmarks            []string
	Shutter               []float64
	Rule                  []float64
	MeanShutter, MeanRule float64
}

// Figure8 derives interference eliminated from the Figure 6 runs. A
// benchmark with no measurable native penalty is skipped (the metric is
// undefined), matching how such bars are absent from the paper's plot.
func (s *Suite) Figure8() Figure8 {
	s.Prewarm(runAlone, runColo, runShutter, runRule)
	var f Figure8
	for _, b := range s.Benchmarks {
		alone := s.Result(b, runner.ModeAlone, 0)
		colo := s.Result(b, runner.ModeNativeColo, 0)
		if colo.Periods <= alone.Periods {
			continue
		}
		f.Benchmarks = append(f.Benchmarks, b.Name)
		f.Shutter = append(f.Shutter, runner.InterferenceEliminated(s.Result(b, runner.ModeCAER, caer.HeuristicShutter), colo, alone))
		f.Rule = append(f.Rule, runner.InterferenceEliminated(s.Result(b, runner.ModeCAER, caer.HeuristicRule), colo, alone))
	}
	f.MeanShutter = stats.Mean(f.Shutter)
	f.MeanRule = stats.Mean(f.Rule)
	return f
}

// Render writes the grouped bar chart with a mean group.
func (f Figure8) Render(w io.Writer) error {
	labels := append(append([]string{}, f.Benchmarks...), "mean")
	return report.BarChart{
		Title:  "Figure 8: cross-core interference eliminated (higher is better)",
		Max:    100,
		Format: "%.1f%%",
	}.Render(w, labels,
		report.Series{Name: "caer-shutter", Values: percentValues(append(append([]float64{}, f.Shutter...), f.MeanShutter))},
		report.Series{Name: "caer-rule", Values: percentValues(append(append([]float64{}, f.Rule...), f.MeanRule))},
	)
}

// Table returns the figure's data as a table.
func (f Figure8) Table() *report.Table {
	t := report.NewTable("benchmark", "shutter_eliminated", "rule_eliminated")
	for i, b := range f.Benchmarks {
		t.AddRow(b, report.Percent(f.Shutter[i]), report.Percent(f.Rule[i]))
	}
	t.AddRow("mean", report.Percent(f.MeanShutter), report.Percent(f.MeanRule))
	return t
}

// FigureAccuracy reproduces the paper's Figures 9 and 10: utilization
// gained relative to the random baseline (Equation 2's A) for the most or
// least interference-sensitive benchmarks. For sensitive benchmarks a
// correct heuristic shows A < 0 (it sacrifices more utilization than
// random); for insensitive ones A > 0.
type FigureAccuracy struct {
	// MostSensitive is true for Figure 9, false for Figure 10.
	MostSensitive         bool
	Benchmarks            []string
	Shutter               []float64
	Rule                  []float64
	MeanShutter, MeanRule float64
}

// FigureAccuracy computes the accuracy figure over the n most (Figure 9)
// or least (Figure 10) sensitive benchmarks — n is 6 in the paper.
func (s *Suite) FigureAccuracy(mostSensitive bool, n int) FigureAccuracy {
	ranked := s.rankBySensitivity()
	if n > len(ranked) {
		n = len(ranked)
	}
	var chosen []spec.Profile
	if mostSensitive {
		chosen = ranked[:n]
	} else {
		chosen = ranked[len(ranked)-n:]
	}
	s.Prewarm(runShutter, runRule, runRandom)
	f := FigureAccuracy{MostSensitive: mostSensitive}
	for _, b := range chosen {
		random := s.Result(b, runner.ModeCAER, caer.HeuristicRandom)
		f.Benchmarks = append(f.Benchmarks, b.Name)
		f.Shutter = append(f.Shutter, runner.Accuracy(s.Result(b, runner.ModeCAER, caer.HeuristicShutter), random))
		f.Rule = append(f.Rule, runner.Accuracy(s.Result(b, runner.ModeCAER, caer.HeuristicRule), random))
	}
	f.MeanShutter = stats.Mean(f.Shutter)
	f.MeanRule = stats.Mean(f.Rule)
	return f
}

// Render writes the grouped bar chart with a mean group.
func (f FigureAccuracy) Render(w io.Writer) error {
	title := "Figure 9: utilization gained relative to random, 6 most sensitive (negative = correctly sacrificing)"
	if !f.MostSensitive {
		title = "Figure 10: utilization gained relative to random, 6 least sensitive (positive = correctly gaining)"
	}
	labels := append(append([]string{}, f.Benchmarks...), "mean")
	return report.BarChart{
		Title:  title,
		Min:    -100,
		Max:    100,
		Format: "%+.1f%%",
	}.Render(w, labels,
		report.Series{Name: "caer-shutter", Values: percentValues(append(append([]float64{}, f.Shutter...), f.MeanShutter))},
		report.Series{Name: "caer-rule", Values: percentValues(append(append([]float64{}, f.Rule...), f.MeanRule))},
	)
}

// Table returns the figure's data as a table.
func (f FigureAccuracy) Table() *report.Table {
	t := report.NewTable("benchmark", "shutter_A", "rule_A")
	for i, b := range f.Benchmarks {
		t.AddRow(b, fmt.Sprintf("%+.3f", f.Shutter[i]), fmt.Sprintf("%+.3f", f.Rule[i]))
	}
	t.AddRow("mean", fmt.Sprintf("%+.3f", f.MeanShutter), fmt.Sprintf("%+.3f", f.MeanRule))
	return t
}
