package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"caer/internal/caer"
)

func TestBurstScheduleExtra(t *testing.T) {
	b := burstSchedule{Onsets: []uint64{10, 100}, Length: 5, Rate: 1000}
	cases := []struct{ period, want uint64 }{
		{0, 0}, {10, 0}, {11, 1000}, {13, 3000}, {15, 5000},
		{50, 5000},   // first burst plateaued
		{101, 6000},  // second burst starts on top of the plateau
		{200, 10000}, // both plateaued
	}
	for _, c := range cases {
		if got := b.extra(c.period); got != c.want {
			t.Errorf("extra(%d) = %d, want %d", c.period, got, c.want)
		}
	}
}

// TestSamplingSuiteQuick is the headline gate: the quick sweep must show
// the event-driven modes matching polling's burst coverage at strictly
// fewer probes, with no false flags — the BENCH_sampling.json contract.
func TestSamplingSuiteQuick(t *testing.T) {
	r := SamplingSuite(1, true)
	if err := r.Check(); err != nil {
		var buf bytes.Buffer
		r.Render(&buf)
		t.Fatalf("sweep gate failed: %v\n%s", err, buf.String())
	}
	if len(r.Points) != len(samplingSweepGrid()) {
		t.Fatalf("%d points, want %d", len(r.Points), len(samplingSweepGrid()))
	}
	// Wider adaptive bounds must not probe more than narrower ones, and
	// detection latency must stay monotone with the bound.
	var prev *SamplingPoint
	for i := range r.Points {
		p := &r.Points[i]
		if p.Mode != caer.SamplingAdaptive.String() {
			continue
		}
		if prev != nil {
			if p.Probes > prev.Probes {
				t.Errorf("adaptive max=%d probed %d times, more than max=%d's %d",
					p.MaxInterval, p.Probes, prev.MaxInterval, prev.Probes)
			}
			if p.MaxLatency < prev.MaxLatency {
				t.Errorf("adaptive max=%d worst latency %d beat max=%d's %d",
					p.MaxInterval, p.MaxLatency, prev.MaxInterval, prev.MaxLatency)
			}
		}
		prev = p
	}
	// Interrupt mode sleeps through the gaps: it must both skip probes and
	// record trigger fires for the bursts that woke it.
	last := r.Points[len(r.Points)-1]
	if last.Mode != caer.SamplingInterrupt.String() {
		t.Fatalf("last sweep point is %s, want interrupt", last.Mode)
	}
	if last.Fires == 0 {
		t.Error("interrupt point recorded no trigger fires")
	}
	if last.Skipped == 0 {
		t.Error("interrupt point skipped no probes")
	}
}

func TestSamplingSuiteDeterministic(t *testing.T) {
	a, b := SamplingSuite(7, true), SamplingSuite(7, true)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical seeds produced different sweeps")
	}
}

func TestSamplingReportRendering(t *testing.T) {
	r := SamplingReport{
		Seed: 3, Bursts: 2, Length: 10, Rate: 100, Periods: 500,
		Points: []SamplingPoint{{
			Mode: "polling", MaxInterval: 1, Probes: 500,
			Flagged: 2, MeanLatency: 3.5, MaxLatency: 5,
		}},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"polling", "2/2", "3.5", "mean_lat"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SamplingReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Points[0].Probes != 500 {
		t.Fatalf("round-trip lost data: %+v", back.Points[0])
	}
}

func TestSamplingCheckRejectsBadSweeps(t *testing.T) {
	good := SamplingReport{Bursts: 2, Points: []SamplingPoint{
		{Mode: "polling", MaxInterval: 1, Probes: 100, Flagged: 2},
		{Mode: "adaptive", MaxInterval: 8, Probes: 40, Flagged: 2},
	}}
	if err := good.Check(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	missed := good
	missed.Points = []SamplingPoint{good.Points[0], {Mode: "adaptive", MaxInterval: 8, Probes: 40, Flagged: 1}}
	if missed.Check() == nil {
		t.Error("missed burst passed Check")
	}
	costly := good
	costly.Points = []SamplingPoint{good.Points[0], {Mode: "adaptive", MaxInterval: 8, Probes: 100, Flagged: 2}}
	if costly.Check() == nil {
		t.Error("probe count equal to polling passed Check")
	}
	noisy := good
	noisy.Points = []SamplingPoint{good.Points[0], {Mode: "adaptive", MaxInterval: 8, Probes: 40, Flagged: 2, FalseFlags: 1}}
	if noisy.Check() == nil {
		t.Error("false flags passed Check")
	}
}
