package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/sched"
	"caer/internal/spec"
)

// SchedPolicyResult is one placement policy's outcome in the scheduler
// regime suite: the same latency service and job mix on the same
// multi-LLC-domain machine, differing only in how the admission queue's
// jobs are placed.
type SchedPolicyResult struct {
	// Name labels the configuration (policy, plus "+migration" when
	// bounded-rate migration is enabled).
	Name   string
	Policy sched.Policy

	// Periods is the latency app's completion time; QoSDegradation is its
	// slowdown versus the jobs-free baseline on the identical machine
	// (1.0 = no interference from the batch side at all).
	Periods        uint64
	QoSDegradation float64

	// JobsSubmitted / JobsCompleted pin the admitted batch throughput the
	// comparison holds equal: every policy must drain the same job set.
	JobsSubmitted, JobsCompleted int
	// BatchInstructions and BatchDuty summarise the batch side's progress.
	BatchInstructions uint64
	BatchDuty         float64

	// Queue behaviour: the longest any job waited (bounded by AgingBound
	// while cores are free), and how many admissions were forced by aging.
	MaxWait        int
	AgedAdmissions int
	// Migrations counts cross-domain job moves (0 unless enabled).
	Migrations int
	// DomainAdmissions counts admissions per LLC domain — the placement
	// signature (contention-aware steers aggressors off the latency
	// domain; round-robin splits them blindly).
	DomainAdmissions []int
}

// SchedRegime is the scheduler regime suite's result: one latency-sensitive
// service pinned to domain 0 of a 2-LLC-domain machine, a fixed mix of
// batch jobs flowing through the admission queue, compared across placement
// policies at equal admitted throughput.
type SchedRegime struct {
	Latency    string
	JobMix     []string
	Domains    int
	Cores      int
	Seed       int64
	AgingBound int

	// BaselinePeriods is the latency app's completion time with no jobs
	// submitted (co-location disallowed — the paper's conservative
	// baseline, scheduled-mode shape).
	BaselinePeriods uint64
	Policies        []SchedPolicyResult
}

// schedRegimeConfig is one suite row: a policy plus whether bounded-rate
// migration is on.
type schedRegimeConfig struct {
	name            string
	policy          sched.Policy
	migrationPeriod int
}

// SchedRegimeSuite runs the scheduler regime comparison (DESIGN.md §9):
// mcf as the latency-sensitive service on domain 0 of a 2-domain, 8-core
// machine; a mix of lbm aggressors and povray quiet jobs submitted to the
// admission queue; identical seeds and job sets across policies. quick
// shrinks instruction counts 4x for a fast smoke run.
func SchedRegimeSuite(seed int64, quick bool) SchedRegime {
	return SchedRegimeSuiteWorkers(seed, quick, 1)
}

// SchedRegimeSuiteWorkers is SchedRegimeSuite with the machine's
// domain-stepper worker pool sized to workers. Results are bit-identical
// for every worker count (the machine's determinism contract); workers is
// deliberately NOT recorded in the SchedRegime artifact so byte-comparing
// BENCH_sched.json across worker counts pins that contract.
func SchedRegimeSuiteWorkers(seed int64, quick bool, workers int) SchedRegime {
	scale := uint64(1)
	if quick {
		scale = 4
	}
	mcf := mustProfile("mcf")
	lbm := mustProfile("lbm")
	povray := mustProfile("povray")
	mcf.Exec.Instructions /= scale
	lbm.Exec.Instructions = 500_000 / scale
	povray.Exec.Instructions = 500_000 / scale

	jobs := []spec.Profile{lbm, lbm, povray, lbm, povray, lbm}
	const agingBound = 1200

	out := SchedRegime{
		Latency:    spec.ShortName(mcf.Name),
		Domains:    2,
		Cores:      8,
		Seed:       seed,
		AgingBound: agingBound,
	}
	for _, j := range jobs {
		out.JobMix = append(out.JobMix, spec.ShortName(j.Name))
	}

	scenario := func(cfg schedRegimeConfig, jobSet []spec.Profile) runner.Scenario {
		return runner.Scenario{
			Latency:   mcf,
			Mode:      runner.ModeScheduled,
			Heuristic: caer.HeuristicRule,
			Seed:      seed,
			Domains:   2,
			Cores:     8,
			Jobs:      jobSet,
			// The admission threshold is set above any reachable score so
			// queueing in this suite is purely capacity-driven: every
			// policy admits at the same rate and the comparison isolates
			// *where* jobs land, not *when*. Threshold-driven queueing is
			// exercised by the sched package's own tests.
			Sched: sched.Config{
				Policy:          cfg.policy,
				AdmitThreshold:  100,
				AgingBound:      agingBound,
				MigrationPeriod: cfg.migrationPeriod,
			},
			MaxPeriods: 200_000,
			Workers:    workers,
		}
	}

	baseline := runner.Run(scenario(schedRegimeConfig{policy: sched.PolicyContentionAware}, nil))
	out.BaselinePeriods = baseline.Periods

	configs := []schedRegimeConfig{
		{name: "round-robin", policy: sched.PolicyRoundRobin},
		{name: "contention-aware", policy: sched.PolicyContentionAware},
		{name: "packed", policy: sched.PolicyPacked},
		{name: "packed+migration", policy: sched.PolicyPacked, migrationPeriod: 40},
	}
	for _, cfg := range configs {
		res := runner.Run(scenario(cfg, jobs))
		pr := SchedPolicyResult{
			Name:              cfg.name,
			Policy:            cfg.policy,
			Periods:           res.Periods,
			QoSDegradation:    float64(res.Periods) / float64(out.BaselinePeriods),
			JobsSubmitted:     len(jobs),
			JobsCompleted:     res.JobsCompleted,
			BatchInstructions: res.BatchInstructions,
			BatchDuty:         res.BatchDuty,
			MaxWait:           res.MaxWait,
			Migrations:        res.Migrations,
			DomainAdmissions:  make([]int, 2),
		}
		for _, d := range res.SchedDecisions {
			if d.Kind != sched.DecisionAdmit {
				continue
			}
			pr.DomainAdmissions[d.To]++
			if d.Aged {
				pr.AgedAdmissions++
			}
		}
		out.Policies = append(out.Policies, pr)
	}
	return out
}

func mustProfile(name string) spec.Profile {
	p, ok := spec.ByName(name)
	if !ok {
		panic("experiments: unknown profile " + name)
	}
	return p
}

// Table returns the regime comparison as a table.
func (r SchedRegime) Table() *report.Table {
	t := report.NewTable("policy", "qos_degradation", "jobs_completed",
		"batch_duty", "admissions_d0/d1", "max_wait", "aged", "migrations")
	for _, p := range r.Policies {
		t.AddRow(p.Name,
			fmt.Sprintf("%.4f", p.QoSDegradation),
			fmt.Sprintf("%d/%d", p.JobsCompleted, p.JobsSubmitted),
			report.Percent(p.BatchDuty),
			fmt.Sprintf("%d/%d", p.DomainAdmissions[0], p.DomainAdmissions[1]),
			fmt.Sprintf("%d", p.MaxWait),
			fmt.Sprintf("%d", p.AgedAdmissions),
			fmt.Sprintf("%d", p.Migrations))
	}
	return t
}

// Render writes the regime summary.
func (r SchedRegime) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Scheduler regimes (DESIGN.md §9): %s service on domain 0 of %d domains x %d cores, jobs %v\nbaseline (no jobs): %d periods; aging bound %d\n",
		r.Latency, r.Domains, r.Cores/r.Domains, r.JobMix, r.BaselinePeriods, r.AgingBound); err != nil {
		return err
	}
	return r.Table().Render(w)
}

// WriteJSON emits the regime suite as a machine-readable artifact (the
// BENCH_sched.json format caer-bench writes for external tooling).
func (r SchedRegime) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
