package experiments

import (
	"strings"
	"testing"

	"caer/internal/caer"
)

// underflowSentinel separates plausible LLC-miss samples (at most millions
// per period, spikes included) from an unsigned read-delta underflow
// (~1.8e19).
const underflowSentinel = 1e15

func TestFaultKindStrings(t *testing.T) {
	for _, k := range FaultKinds() {
		if s := k.String(); strings.HasPrefix(s, "FaultKind(") {
			t.Errorf("fault kind %d has no name", int(k))
		}
	}
	if s := FaultKind(99).String(); s != "FaultKind(99)" {
		t.Errorf("unknown kind = %q", s)
	}
}

// TestChaosSuiteFailsOpen is the headline acceptance check: every fault
// class under every heuristic leaves the latency app able to complete, no
// underflow-magnitude sample ever reaches the table, detection keeps
// producing verdicts, and degradation never outlives the faults.
func TestChaosSuiteFailsOpen(t *testing.T) {
	reports := ChaosSuite(1, true)
	type regime struct {
		h caer.HeuristicKind
		s caer.SamplingMode
	}
	clean := map[regime]ChaosReport{}
	for _, r := range reports {
		if r.Fault == FaultNone {
			clean[regime{r.Heuristic, r.Sampling}] = r
		}
	}
	for _, r := range reports {
		r := r
		t.Run(r.Heuristic.String()+"/"+r.Fault.String()+"/"+r.Sampling.String(), func(t *testing.T) {
			if !r.Completed {
				t.Fatal("latency app never completed: the runtime is not fail-open")
			}
			if r.MaxSample >= underflowSentinel {
				t.Fatalf("sample %.3g reached the table: read-delta underflow", r.MaxSample)
			}
			if r.DegradedAtEnd {
				t.Error("engine still degraded after the run (faults had ceased)")
			}
			if r.CPositive+r.CNegative == 0 {
				t.Error("detection produced no verdicts at all")
			}
			base, ok := clean[regime{r.Heuristic, r.Sampling}]
			if !ok {
				t.Fatal("no clean baseline for heuristic")
			}
			// Bounded degradation: faults may cost accuracy, but must not
			// blow the latency app's run time past a small multiple of the
			// clean managed run.
			if r.Fault != FaultNone && r.Periods > 3*base.Periods {
				t.Errorf("run took %d periods vs clean %d: degradation unbounded", r.Periods, base.Periods)
			}
			switch r.Fault {
			case FaultNone, FaultMonitorCrash:
				if r.Faults.Total() != 0 {
					t.Errorf("counter faults injected in a %s regime: %+v", r.Fault, r.Faults)
				}
				if r.Fault == FaultMonitorCrash && r.Periods <= uint64(r.OutageEnd) {
					t.Errorf("run ended at period %d, before the outage ended at %d", r.Periods, r.OutageEnd)
				}
			case FaultCounterReset, FaultCounterSpike, FaultDroppedSample, FaultProbeJitter:
				if r.Faults.Total() == 0 {
					t.Error("regime injected no faults: nothing was tested")
				}
			default:
				t.Fatalf("unhandled fault kind %v", r.Fault)
			}
		})
	}
}

// TestChaosMonitorCrashBoundsPauses pins the watchdog guarantee end to end:
// once the monitor dies, the batch can stay paused at most one watchdog
// horizon before the engine fails open, and the engine recovers after the
// monitor revives.
func TestChaosMonitorCrashBoundsPauses(t *testing.T) {
	for _, h := range ChaosHeuristics() {
		h := h
		t.Run(h.String(), func(t *testing.T) {
			r := RunChaos(ChaosScenario{Heuristic: h, Fault: FaultMonitorCrash, Seed: 1, Quick: true})
			horizon := r.WatchdogPeriods
			if !r.Completed {
				t.Fatal("latency app never completed")
			}
			if r.Periods <= uint64(r.OutageEnd) {
				t.Fatalf("run ended at period %d, before the outage ended at %d: schedule untested", r.Periods, r.OutageEnd)
			}
			if r.WatchdogTrips == 0 {
				t.Error("watchdog never tripped during a monitor outage")
			}
			if r.DegradedAtEnd {
				t.Error("engine still degraded after the monitor revived")
			}
			// +1: a pause directive issued the period before the horizon
			// check can land is still in flight when the watchdog trips.
			if r.OutagePauseStreak > horizon+1 {
				t.Errorf("batch paused %d consecutive periods after the crash, horizon is %d",
					r.OutagePauseStreak, horizon)
			}
		})
	}
}

// TestChaosSuiteCoversInterruptSampling pins the suite's event-driven
// block: every fault class must also run under threshold-interrupt
// sampling, and those runs must recover like the polling ones (the suite's
// shared fail-open assertions apply to them via TestChaosSuiteFailsOpen —
// here we check the block exists and is complete).
func TestChaosSuiteCoversInterruptSampling(t *testing.T) {
	reports := ChaosSuite(1, true)
	covered := map[FaultKind]bool{}
	for _, r := range reports {
		if r.Sampling == caer.SamplingInterrupt {
			if r.Heuristic != caer.HeuristicRule {
				t.Errorf("interrupt chaos run uses %s, want rule-based", r.Heuristic)
			}
			covered[r.Fault] = true
		}
	}
	for _, f := range FaultKinds() {
		if !covered[f] {
			t.Errorf("fault class %s has no interrupt-sampling chaos run", f)
		}
	}
}

// TestChaosDeterministic: the same seed reproduces the same report exactly,
// faults included.
func TestChaosDeterministic(t *testing.T) {
	s := ChaosScenario{Heuristic: caer.HeuristicRule, Fault: FaultCounterReset, Seed: 7, Quick: true}
	a, b := RunChaos(s), RunChaos(s)
	if a != b {
		t.Errorf("chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestWriteChaosReport(t *testing.T) {
	var sb strings.Builder
	WriteChaosReport(&sb, []ChaosReport{
		{Heuristic: caer.HeuristicRule, Fault: FaultCounterReset, Periods: 100, CPositive: 3},
	})
	out := sb.String()
	for _, want := range []string{"rule-based", "counter-reset", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
