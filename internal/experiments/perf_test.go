package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPerfSuiteQuick runs the -perf baseline in quick mode and checks the
// report's shape: every pipeline stage measured, positive rates, the
// determinism contract holding on the speedup scenario, and a valid
// BENCH_perf.json encoding.
func TestPerfSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("perf baseline is a timing suite; skipped in -short")
	}
	rep := PerfSuite(7, true, 2)

	wantStages := []string{
		"cache_step", "hierarchy_access", "pmu_probe",
		"comm_publish", "engine_tick", "sched_tick", "machine_period",
	}
	got := map[string]PerfBench{}
	for _, m := range rep.Micro {
		got[m.Name] = m
	}
	for _, s := range wantStages {
		m, ok := got[s]
		if !ok {
			t.Fatalf("stage %q missing from report (have %v)", s, rep.Micro)
		}
		if m.NsPerOp <= 0 || m.Ops <= 0 {
			t.Fatalf("stage %q has non-positive measurement: %+v", s, m)
		}
	}
	if len(rep.Pipeline) != 3 {
		t.Fatalf("want 3 pipeline rows (caer_runtime + 2x machine_batched), got %d", len(rep.Pipeline))
	}
	for _, p := range rep.Pipeline {
		if p.PeriodsPerSec <= 0 || p.NsPerPeriod <= 0 {
			t.Fatalf("pipeline %q has non-positive rate: %+v", p.Name, p)
		}
	}
	if !rep.Speedup.Identical {
		t.Fatalf("determinism violation: Workers=1 vs Workers=%d scheduled results differ", rep.Speedup.Workers)
	}
	if rep.Speedup.Speedup <= 0 {
		t.Fatalf("speedup must be positive, got %v", rep.Speedup.Speedup)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back PerfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_perf.json does not round-trip: %v", err)
	}
	if len(back.Micro) != len(rep.Micro) {
		t.Fatalf("round-trip lost micro rows: %d vs %d", len(back.Micro), len(rep.Micro))
	}

	var render strings.Builder
	if err := rep.Render(&render); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, s := range wantStages {
		if !strings.Contains(render.String(), s) {
			t.Fatalf("rendered table missing stage %q:\n%s", s, render.String())
		}
	}
}
