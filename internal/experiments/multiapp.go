package experiments

import (
	"fmt"
	"io"

	"caer/internal/caer"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/report"
	"caer/internal/spec"
)

// MultiApp realizes the paper's Figure 4 design vision (left half): two
// latency-sensitive applications and two batch applications on a four-core
// chip, with a CAER-M monitor under each latency app and a full CAER engine
// under each batch app, all cooperating through one communication table and
// reacting together.
//
// The experiment compares three runs of the same mix: the latency pair
// alone (co-location disallowed), native four-way co-location, and CAER.
type MultiApp struct {
	LatencyNames []string
	BatchNames   []string
	Heuristic    caer.HeuristicKind

	// Periods until BOTH latency apps finished, per mode.
	AlonePeriods, ColoPeriods, CAERPeriods uint64
	// Slowdown of the latency pair vs running without batch co-runners.
	ColoSlowdown, CAERSlowdown float64
	// Mean batch-core duty under native and CAER co-location.
	ColoBatchDuty, CAERBatchDuty float64
	// Engine decision totals (CAER run).
	CPositive, CNegative uint64
}

// multiAppBases spreads each application's footprint.
var multiAppBases = []uint64{0, 1 << 26, 1 << 27, 1 << 28}

// MultiApp runs the 2+2 experiment for the given latency pair and batch
// pair under one heuristic. Latency profiles run to completion; batch
// profiles run as endless services.
func (s *Suite) MultiApp(latency, batch [2]spec.Profile, kind caer.HeuristicKind) MultiApp {
	s.mu.Lock()
	s.defaults()
	seed := s.Seed
	cfg := s.Config
	s.mu.Unlock()

	out := MultiApp{
		LatencyNames: []string{latency[0].Name, latency[1].Name},
		BatchNames:   []string{batch[0].Name, batch[1].Name},
		Heuristic:    kind,
	}

	newLatency := func(m *machine.Machine) [2]*machine.Process {
		var ps [2]*machine.Process
		for i := range latency {
			ps[i] = latency[i].NewProcess(multiAppBases[i], seed+int64(i))
			m.Bind(i, ps[i])
		}
		return ps
	}
	bothDone := func(ps [2]*machine.Process) func() bool {
		return func() bool { return ps[0].Done() && ps[1].Done() }
	}

	// Latency pair alone.
	{
		m := machine.New(machine.Config{Cores: 4})
		ps := newLatency(m)
		for !bothDone(ps)() {
			m.RunPeriod()
		}
		out.AlonePeriods = m.Periods()
	}

	// Native four-way co-location (batch relaunched on completion).
	{
		m := machine.New(machine.Config{Cores: 4})
		ps := newLatency(m)
		var bps [2]*machine.Process
		for i := range batch {
			bps[i] = batch[i].Batch().NewProcess(multiAppBases[2+i], seed+10+int64(i))
			m.Bind(2+i, bps[i])
		}
		for !bothDone(ps)() {
			m.RunPeriod()
		}
		out.ColoPeriods = m.Periods()
		out.ColoBatchDuty = (m.Core(2).Utilization() + m.Core(3).Utilization()) / 2
	}

	// CAER co-location.
	{
		m := machine.New(machine.Config{Cores: 4})
		rt := caer.NewRuntime(m, kind, cfg)
		var ps [2]*machine.Process
		for i := range latency {
			ps[i] = latency[i].NewProcess(multiAppBases[i], seed+int64(i))
			rt.AddLatency(spec.ShortName(latency[i].Name), i, ps[i])
		}
		for i := range batch {
			rt.AddBatch(spec.ShortName(batch[i].Name), 2+i,
				batch[i].Batch().NewProcess(multiAppBases[2+i], seed+10+int64(i)))
		}
		rt.RunUntil(bothDone(ps), 10_000_000)
		out.CAERPeriods = m.Periods()
		out.CAERBatchDuty = (m.Core(2).Utilization() + m.Core(3).Utilization()) / 2
		for _, e := range rt.Engines() {
			st := e.Stats()
			out.CPositive += st.CPositive
			out.CNegative += st.CNegative
		}
		// Keep the PMU import honest: read a counter through the public
		// source interface as a sanity check that the run did real work.
		if m.ReadCounter(0, pmu.EventInstrRetired) == 0 {
			panic("experiments: multi-app CAER run retired no instructions")
		}
	}

	out.ColoSlowdown = float64(out.ColoPeriods) / float64(out.AlonePeriods)
	out.CAERSlowdown = float64(out.CAERPeriods) / float64(out.AlonePeriods)
	return out
}

// Table returns the experiment as a table.
func (m MultiApp) Table() *report.Table {
	t := report.NewTable("configuration", "latency_pair_slowdown", "batch_duty")
	t.AddRow("latency pair alone", "1.0000", "-")
	t.AddRow("native 2+2 co-location", fmt.Sprintf("%.4f", m.ColoSlowdown), report.Percent(m.ColoBatchDuty))
	t.AddRow(fmt.Sprintf("CAER 2+2 (%s)", m.Heuristic), fmt.Sprintf("%.4f", m.CAERSlowdown), report.Percent(m.CAERBatchDuty))
	return t
}

// Render writes the experiment summary.
func (m MultiApp) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Multi-application vision (Figure 4): %s + %s vs %s + %s on 4 cores\n",
		m.LatencyNames[0], m.LatencyNames[1], m.BatchNames[0], m.BatchNames[1]); err != nil {
		return err
	}
	if err := m.Table().Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "engine verdicts: %d contention / %d clear\n", m.CPositive, m.CNegative)
	return err
}
