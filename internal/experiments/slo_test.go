package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The SLO suite is a pure function of the seed (pinned by
// TestSLORegimeSuiteDeterministic), so one quick-mode execution serves the
// gate assertions, the determinism baseline, and the bundle test.
var (
	sloQuickOnce sync.Once
	sloQuickRun  SLORegime
)

func sloQuick() SLORegime {
	sloQuickOnce.Do(func() { sloQuickRun = SLOSuite(1, true) })
	return sloQuickRun
}

// TestSLORegimeSuite is the SLO ISSUE's headline acceptance check: the
// metrics-fed policy must match or beat least-pressure on the sensitive
// p99 at equal throughput with fresh-view decisions, a total scrape outage
// must degrade to least-pressure exactly, and the alert battery's seeded
// monitor outages must each raise exactly one firing episode with zero
// false positives — the gate caer-bench -slo enforces.
func TestSLORegimeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slo regime suite is slow; skipped in -short")
	}
	r := sloQuick()

	if err := r.Check(); err != nil {
		t.Fatalf("slo gate: %v", err)
	}
	if got := len(r.Battery.Episodes); got != len(r.Battery.Windows) {
		t.Errorf("battery raised %d episodes for %d seeded windows", got, len(r.Battery.Windows))
	}
	for _, ep := range r.Battery.Episodes {
		if ep.Window < 0 {
			t.Errorf("episode %+v attributed to no seeded window", ep)
		}
		if ep.PeakBurn < 2 {
			t.Errorf("episode %+v fired below the burn threshold", ep)
		}
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"telemetry", "telemetry-outage", "alert battery"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered output missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded SLORegime
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded.Machines != r.Machines || len(decoded.Policies) != len(r.Policies) {
		t.Errorf("artifact round-trip mismatch: %+v", decoded)
	}

	// The doctor bundle the suite leaves next to the artifact must be
	// complete and non-empty — caer-doctor's whole input contract.
	dir := t.TempDir()
	if err := r.WriteDoctorBundle(dir); err != nil {
		t.Fatalf("WriteDoctorBundle: %v", err)
	}
	for _, name := range []string{
		"SLO_series.json", "SLO_objectives.json", "SLO_events.json", "SLO_trace.json",
	} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil || st.Size() == 0 {
			t.Errorf("bundle file %s missing or empty (err %v)", name, err)
		}
	}
}

// TestSLORegimeSuiteDeterministic pins the artifact byte-for-byte across
// repeat runs and across per-machine worker-pool sizes: BENCH_slo.json is
// a pure function of the seed.
func TestSLORegimeSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slo regime suite is slow; skipped in -short")
	}
	if raceEnabled {
		t.Skip("suite repeats exceed the race budget; internal/fleet pins repeat and worker determinism under -race")
	}
	render := func(r SLORegime) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a := render(sloQuick())
	b := render(SLOSuiteWorkers(1, true, 1))
	if !bytes.Equal(a, b) {
		t.Error("repeat run of the slo suite produced a different artifact")
	}
	c := render(SLOSuiteWorkers(1, true, 4))
	if !bytes.Equal(a, c) {
		t.Error("Workers=4 slo suite artifact differs from Workers=1")
	}
}
