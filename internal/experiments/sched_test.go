package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSchedRegimeSuite is the ISSUE's headline acceptance check: on a
// 2-LLC-domain machine, contention-aware placement must achieve strictly
// lower latency-app QoS degradation than round-robin at equal admitted
// batch throughput, and the admission queue must never hold a job past its
// aging bound.
func TestSchedRegimeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler regime suite is slow; skipped in -short")
	}
	r := SchedRegimeSuite(42, true)

	if r.BaselinePeriods == 0 {
		t.Fatal("baseline latency run never completed")
	}
	byName := map[string]SchedPolicyResult{}
	for _, p := range r.Policies {
		byName[p.Name] = p
		if p.JobsCompleted != p.JobsSubmitted {
			t.Errorf("%s: completed %d of %d jobs", p.Name, p.JobsCompleted, p.JobsSubmitted)
		}
		if p.MaxWait > r.AgingBound {
			t.Errorf("%s: job waited %d periods past aging bound %d", p.Name, p.MaxWait, r.AgingBound)
		}
		if p.QoSDegradation < 1 {
			t.Errorf("%s: QoS degradation %.4f below 1 (faster than jobs-free baseline?)", p.Name, p.QoSDegradation)
		}
	}

	rr, ok := byName["round-robin"]
	if !ok {
		t.Fatal("missing round-robin row")
	}
	ca, ok := byName["contention-aware"]
	if !ok {
		t.Fatal("missing contention-aware row")
	}
	// Equal admitted throughput (both drained the full job set) ...
	if rr.JobsCompleted != ca.JobsCompleted {
		t.Fatalf("throughput differs: round-robin %d vs contention-aware %d", rr.JobsCompleted, ca.JobsCompleted)
	}
	// ... and strictly lower QoS degradation for the contention-aware policy.
	if !(ca.QoSDegradation < rr.QoSDegradation) {
		t.Errorf("contention-aware QoS degradation %.4f not strictly below round-robin %.4f",
			ca.QoSDegradation, rr.QoSDegradation)
	}
	// The placement signature: contention-aware keeps the latency domain
	// clear of lbm aggressors while round-robin splits admissions.
	if rr.DomainAdmissions[0] == 0 {
		t.Errorf("round-robin placed no jobs on the latency domain: %v", rr.DomainAdmissions)
	}
	if pm := byName["packed+migration"]; pm.Migrations == 0 {
		t.Error("packed+migration row recorded no migrations")
	}

	// Determinism per seed.
	r2 := SchedRegimeSuite(42, true)
	for i, p := range r.Policies {
		q := r2.Policies[i]
		if p.Periods != q.Periods || p.JobsCompleted != q.JobsCompleted ||
			p.MaxWait != q.MaxWait || p.Migrations != q.Migrations {
			t.Errorf("seed 42 not deterministic for %s: %+v vs %+v", p.Name, p, q)
		}
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "contention-aware") {
		t.Errorf("rendered table missing policy rows:\n%s", buf.String())
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded SchedRegime
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded.BaselinePeriods != r.BaselinePeriods || len(decoded.Policies) != len(r.Policies) {
		t.Errorf("artifact round-trip mismatch: %+v", decoded)
	}
}
