package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"caer/internal/caer"
	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/mem"
	"caer/internal/pmu"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/sched"
	"caer/internal/spec"
)

// PerfBench is one micro-benchmark result: the per-operation cost of a
// single stage of the per-period pipeline.
type PerfBench struct {
	// Name identifies the stage: cache_step, hierarchy_access, pmu_probe,
	// comm_publish, engine_tick, sched_tick, machine_period.
	Name string
	// NsPerOp is the measured wall-clock cost per operation.
	NsPerOp float64
	// Ops is the number of operations timed.
	Ops int
}

// PerfPipeline is an end-to-end period-rate measurement: how many full
// sampling periods per second one deployment shape sustains.
type PerfPipeline struct {
	// Name identifies the shape: caer_runtime (2-core CAER pipeline,
	// dispatch per period) or machine_batched (multi-domain machine,
	// RunPeriods batch dispatch).
	Name string
	// Domains/Cores/Workers describe the machine.
	Domains, Cores, Workers int
	// Batch is the periods-per-dispatch batch size (1 = per-period).
	Batch int
	// NsPerPeriod and PeriodsPerSec are the throughput of the period loop.
	NsPerPeriod   float64
	PeriodsPerSec float64
}

// PerfSpeedup is the parallel domain-stepping measurement: the same
// multi-domain scheduled scenario run serially and on the worker pool,
// with the results byte-compared (the determinism contract).
type PerfSpeedup struct {
	Domains, Cores int
	Workers        int
	// SerialMs / ParallelMs are wall-clock for the whole scenario.
	SerialMs, ParallelMs float64
	// Speedup is SerialMs/ParallelMs. On a single-CPU host this sits near
	// (or slightly below) 1.0 — the pool adds a handoff per domain per
	// period but cannot overlap work; it scales with physical cores.
	Speedup float64
	// Identical reports whether the serial and parallel runs produced
	// byte-identical results. Must always be true.
	Identical bool
}

// PerfReport is the caer-bench -perf artifact (BENCH_perf.json): the
// repo's performance baseline for the per-period simulation core.
type PerfReport struct {
	Seed       int64
	Quick      bool
	GOMAXPROCS int
	NumCPU     int
	Micro      []PerfBench
	Pipeline   []PerfPipeline
	Speedup    PerfSpeedup
}

// perfMinTime is how long each micro-benchmark accumulates samples; quick
// mode shrinks it for CI smoke runs.
func perfMinTime(quick bool) time.Duration {
	if quick {
		return 20 * time.Millisecond
	}
	return 250 * time.Millisecond
}

// benchNs times op(n) batches until minTime of work accumulates and
// returns the mean cost per operation.
func benchNs(minTime time.Duration, op func(n int)) (float64, int) {
	op(1) // warm up, pull code+data into cache
	n := 1
	var total time.Duration
	ops := 0
	for total < minTime {
		t0 := time.Now()
		op(n)
		d := time.Since(t0)
		total += d
		ops += n
		if d < minTime/10 && n < 1<<24 {
			n *= 2
		}
	}
	return float64(total.Nanoseconds()) / float64(ops), ops
}

// PerfSuite measures the per-period pipeline stage by stage and end to
// end, then the parallel domain-stepping speedup, and returns the report.
// workers sizes the pool for the parallel measurements (minimum 2).
func PerfSuite(seed int64, quick bool, workers int) PerfReport {
	if workers < 2 {
		workers = 2
	}
	minTime := perfMinTime(quick)
	rep := PerfReport{
		Seed:       seed,
		Quick:      quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	micro := func(name string, op func(n int)) {
		ns, ops := benchNs(minTime, op)
		rep.Micro = append(rep.Micro, PerfBench{Name: name, NsPerOp: ns, Ops: ops})
	}

	// cache_step: one set-associative lookup+insert against a 512x16 cache,
	// the paper-shaped L3 geometry.
	{
		c := mem.NewCache(mem.Config{Name: "perf", Sets: 512, Ways: 16})
		addrs := perfAddrs(seed, 12288)
		i := 0
		micro("cache_step", func(n int) {
			for k := 0; k < n; k++ {
				a := addrs[i&4095]
				i++
				if !c.Lookup(a, false) {
					c.Insert(a, 0, false)
				}
			}
		})
	}

	// hierarchy_access: a full L1->L2->L3->memory access on the default
	// 2-core hierarchy.
	{
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig(2))
		addrs := perfAddrs(seed+1, 12288)
		i := 0
		micro("hierarchy_access", func(n int) {
			for k := 0; k < n; k++ {
				h.Access(i&1, addrs[i&4095], false, uint64(i))
				i++
			}
		})
	}

	// pmu_probe: one sampler sweep (read-and-restart of every counter).
	{
		m := perfMachine(seed, 1, 2)
		m.RunPeriod()
		s := pmu.NewSampler(pmu.New(m, 0), []pmu.Event{
			pmu.EventLLCMisses, pmu.EventLLCAccesses,
			pmu.EventInstrRetired, pmu.EventCycles,
		}, false)
		micro("pmu_probe", func(n int) {
			for k := 0; k < n; k++ {
				s.Probe()
			}
		})
	}

	// comm_publish: one windowed sample publish into a table slot.
	{
		t := comm.NewTable(caer.DefaultConfig().WindowSize)
		slot := t.Register("perf", comm.RoleBatch)
		i := 0
		micro("comm_publish", func(n int) {
			for k := 0; k < n; k++ {
				slot.Publish(float64(i & 255))
				i++
			}
		})
	}

	// engine_tick: one full detect/respond tick of a rule-based engine,
	// including its own publish and the neighbor window read.
	{
		cfg := caer.DefaultConfig()
		t := comm.NewTable(cfg.WindowSize)
		lat := t.Register("lat", comm.RoleLatency)
		own := t.Register("batch", comm.RoleBatch)
		eng := caer.NewEngine(caer.NewRuleDetector(cfg), caer.NewRedLightGreenLight(cfg), own, []*comm.Slot{lat})
		i := 0
		micro("engine_tick", func(n int) {
			for k := 0; k < n; k++ {
				t.BumpPeriod()
				lat.Publish(float64((i * 7) & 255))
				eng.Tick(float64(i & 255))
				i++
			}
		})
	}

	// sched_tick: one scheduler period on a small 2-domain machine —
	// machine step, classifier observation, per-domain engine ticks,
	// admission/aging — the ModeScheduled inner loop.
	{
		m := machine.New(machine.Config{
			Cores: 4, Domains: 2, PeriodCycles: 6000, SlicesPerPeriod: 60,
		})
		sd := sched.New(m, sched.Config{AdmitThreshold: 100})
		mcf := mustProfile("mcf")
		sd.AddLatency("mcf", 0, mcf.NewProcess(0, seed))
		lbm := spec.LBM()
		for j := 0; j < 2; j++ {
			j := j
			sd.Submit(sched.Job{Name: "lbm", New: func() *machine.Process {
				return lbm.Batch().NewProcess(uint64(1<<28)+uint64(j)<<26, seed+1+int64(j))
			}})
		}
		micro("sched_tick", func(n int) {
			for k := 0; k < n; k++ {
				sd.Step()
			}
		})
	}

	// machine_period: one full 60k-cycle period of the paper's 2-core
	// mcf-vs-lbm machine — the figure experiments' unit of work.
	var periodNs float64
	{
		m := perfMachine(seed, 1, 2)
		ns, ops := benchNs(minTime, func(n int) {
			for k := 0; k < n; k++ {
				m.RunPeriod()
			}
		})
		periodNs = ns
		rep.Micro = append(rep.Micro, PerfBench{Name: "machine_period", NsPerOp: ns, Ops: ops})
	}

	// Pipeline rates: the full CAER runtime loop (machine + probe +
	// publish + engine tick + actuation per period), and the multi-domain
	// machine under batch dispatch at Workers=1 and Workers=workers.
	{
		m := perfMachine(seed, 1, 2)
		rt := caer.NewRuntime(m, caer.HeuristicRule, caer.DefaultConfig())
		mcf := mustProfile("mcf")
		rt.AddLatency("mcf", 0, mcf.NewProcess(0, seed))
		rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, seed+1))
		ns, _ := benchNs(minTime, func(n int) {
			for k := 0; k < n; k++ {
				rt.Step()
			}
		})
		rep.Pipeline = append(rep.Pipeline, PerfPipeline{
			Name: "caer_runtime", Domains: 1, Cores: 2, Workers: 1, Batch: 1,
			NsPerPeriod: ns, PeriodsPerSec: 1e9 / ns,
		})
	}
	const batch = 32
	for _, w := range []int{1, workers} {
		m := perfMachine(seed, 4, 2)
		m.SetWorkers(w)
		ns, _ := benchNs(minTime, func(n int) {
			for k := 0; k < n; k++ {
				m.RunPeriods(batch)
			}
		})
		m.StopWorkers()
		rep.Pipeline = append(rep.Pipeline, PerfPipeline{
			Name: "machine_batched", Domains: 4, Cores: 8, Workers: w, Batch: batch,
			NsPerPeriod: ns / batch, PeriodsPerSec: 1e9 / (ns / batch),
		})
	}
	_ = periodNs

	rep.Speedup = measureSpeedup(seed, quick, workers)
	return rep
}

// perfMachine builds a machine of domains x perDomain cores with an
// mcf-shaped process on even cores and an lbm adversary on odd cores.
func perfMachine(seed int64, domains, perDomain int) *machine.Machine {
	m := machine.New(machine.Config{Cores: domains * perDomain, Domains: domains})
	mcf := mustProfile("mcf")
	lbm := spec.LBM()
	for i := 0; i < m.Cores(); i++ {
		if i%2 == 0 {
			m.Bind(i, mcf.Batch().NewProcess(uint64(i)<<26, seed+int64(i)))
		} else {
			m.Bind(i, lbm.Batch().NewProcess(uint64(1<<28)+uint64(i)<<26, seed+int64(i)))
		}
	}
	return m
}

func perfAddrs(seed int64, span int) []uint64 {
	// Deterministic pseudo-random address stream (xorshift; no global rand).
	addrs := make([]uint64, 4096)
	x := uint64(seed)*2654435761 + 1
	for i := range addrs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addrs[i] = x % uint64(span)
	}
	return addrs
}

// speedupScenario is the ≥2-domain scheduled scenario the speedup is
// measured on: a latency service per domain and a queue of aggressor/quiet
// jobs, so every domain has real per-period engine work.
func speedupScenario(seed int64, quick bool, workers int) runner.Scenario {
	scale := uint64(1)
	if quick {
		scale = 8
	}
	mcf := mustProfile("mcf")
	mcf.Exec.Instructions /= scale
	xal := mustProfile("xalancbmk")
	xal.Exec.Instructions /= scale
	namd := mustProfile("namd")
	namd.Exec.Instructions /= scale
	povray := mustProfile("povray")
	lbm := mustProfile("lbm")
	lbm.Exec.Instructions = 400_000 / scale
	povray.Exec.Instructions = 400_000 / scale
	return runner.Scenario{
		Latency:        mcf,
		ExtraLatencies: []spec.Profile{xal, namd, xal},
		Mode:           runner.ModeScheduled,
		Heuristic:      caer.HeuristicRule,
		Seed:           seed,
		Domains:        4,
		Cores:          16,
		Jobs: []spec.Profile{
			lbm, povray, lbm, lbm, povray, lbm, povray, lbm,
		},
		Sched: sched.Config{
			Policy:         sched.PolicyContentionAware,
			AdmitThreshold: 100,
			AgingBound:     1200,
		},
		MaxPeriods: 200_000,
		Workers:    workers,
	}
}

// comparableResult strips the non-deterministic and config-dependent parts
// of a runner.Result (the Scenario echo carries Workers) down to the
// fields the determinism contract covers.
type comparableResult struct {
	Periods             uint64
	Completed           bool
	LatencyInstructions uint64
	LatencyMisses       uint64
	BatchInstructions   uint64
	BatchMisses         uint64
	BatchDuty           float64
	ChipUtilization     float64
	JobsCompleted       int
	MaxWait             int
	Migrations          int
	BatchResults        []runner.BatchResult
	SchedDecisions      []sched.Decision
}

// marshalComparable renders the determinism-relevant slice of a result as
// canonical JSON bytes.
func marshalComparable(res runner.Result) []byte {
	b, err := json.Marshal(comparableResult{
		Periods:             res.Periods,
		Completed:           res.Completed,
		LatencyInstructions: res.LatencyInstructions,
		LatencyMisses:       res.LatencyMisses,
		BatchInstructions:   res.BatchInstructions,
		BatchMisses:         res.BatchMisses,
		BatchDuty:           res.BatchDuty,
		ChipUtilization:     res.ChipUtilization,
		JobsCompleted:       res.JobsCompleted,
		MaxWait:             res.MaxWait,
		Migrations:          res.Migrations,
		BatchResults:        res.BatchResults,
		SchedDecisions:      res.SchedDecisions,
	})
	if err != nil {
		panic("experiments: marshal comparable result: " + err.Error())
	}
	return b
}

func measureSpeedup(seed int64, quick bool, workers int) PerfSpeedup {
	t0 := time.Now()
	serial := runner.Run(speedupScenario(seed, quick, 1))
	serialD := time.Since(t0)
	t1 := time.Now()
	parallel := runner.Run(speedupScenario(seed, quick, workers))
	parallelD := time.Since(t1)
	return PerfSpeedup{
		Domains:    4,
		Cores:      16,
		Workers:    workers,
		SerialMs:   float64(serialD.Microseconds()) / 1e3,
		ParallelMs: float64(parallelD.Microseconds()) / 1e3,
		Speedup:    float64(serialD) / float64(parallelD),
		Identical:  bytes.Equal(marshalComparable(serial), marshalComparable(parallel)),
	}
}

// Table renders the report's micro and pipeline rows.
func (r PerfReport) Table() *report.Table {
	t := report.NewTable("stage", "ns/op", "periods/sec", "shape")
	for _, m := range r.Micro {
		t.AddRow(m.Name, fmt.Sprintf("%.1f", m.NsPerOp), "-", "-")
	}
	for _, p := range r.Pipeline {
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", p.NsPerPeriod),
			fmt.Sprintf("%.0f", p.PeriodsPerSec),
			fmt.Sprintf("%dd x %dc w=%d batch=%d", p.Domains, p.Cores/p.Domains, p.Workers, p.Batch))
	}
	return t
}

// Render writes the perf baseline summary.
func (r PerfReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Perf baseline (DESIGN.md §11): per-period pipeline cost, GOMAXPROCS=%d NumCPU=%d\n",
		r.GOMAXPROCS, r.NumCPU); err != nil {
		return err
	}
	if err := r.Table().Render(w); err != nil {
		return err
	}
	s := r.Speedup
	_, err := fmt.Fprintf(w,
		"domain-parallel speedup: %dd x %dc scheduled scenario, workers=%d: serial %.0f ms, parallel %.0f ms, %.2fx, identical=%v\n",
		s.Domains, s.Cores/s.Domains, s.Workers, s.SerialMs, s.ParallelMs, s.Speedup, s.Identical)
	return err
}

// WriteJSON emits the report as the BENCH_perf.json artifact.
func (r PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
