// Command caer-trace dumps a benchmark's per-period PMU time series (the
// raw data behind the paper's Figure 3): last-level-cache misses and
// instructions retired per sampling period, running alone or next to the
// lbm adversary.
//
// Usage:
//
//	caer-trace -bench xalancbmk [-periods 500] [-colo]
//	           [-format csv|spark|hist|phases] [-o trace.bin]
//	           [-chrome trace.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/report"
	"caer/internal/spec"
	"caer/internal/stats"
	"caer/internal/trace"
)

func main() {
	bench := flag.String("bench", "xalancbmk", "benchmark to trace")
	periods := flag.Int("periods", 0, "periods to trace (0 = run to completion)")
	colo := flag.Bool("colo", false, "co-locate with lbm while tracing")
	format := flag.String("format", "csv", "output format: csv, spark, hist or phases")
	out := flag.String("o", "", "also write the full multi-core trace (binary) to this file")
	chrome := flag.String("chrome", "", "also write the trace as Chrome trace-event JSON to this file")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	p, ok := spec.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "caer-trace: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}

	m := machine.New(machine.Config{Cores: 2})
	proc := p.NewProcess(0, *seed)
	m.Bind(0, proc)
	if *colo {
		m.Bind(1, spec.LBM().Batch().NewProcess(1<<28, *seed+1))
	}
	sampler := pmu.NewSampler(pmu.New(m, 0),
		[]pmu.Event{pmu.EventLLCMisses, pmu.EventInstrRetired, pmu.EventCycles}, true)
	rec := trace.NewRecorder(m)
	for i := 0; (*periods == 0 || i < *periods) && !proc.Done(); i++ {
		m.RunPeriod()
		sampler.Probe()
		rec.Tick()
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caer-trace: %v\n", err)
			os.Exit(1)
		}
		if _, err := rec.Trace().WriteTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "caer-trace: write trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[wrote %s: %d periods x %d cores]\n", *out, rec.Trace().Len(), m.Cores())
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caer-trace: %v\n", err)
			os.Exit(1)
		}
		if err := rec.Trace().WriteChrome(f); err != nil {
			fmt.Fprintf(os.Stderr, "caer-trace: write chrome trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[wrote %s: chrome trace, load in chrome://tracing or Perfetto]\n", *chrome)
	}

	misses := sampler.Series(pmu.EventLLCMisses)
	retired := sampler.Series(pmu.EventInstrRetired)
	switch *format {
	case "csv":
		fmt.Println("period,llc_misses,instructions_retired")
		for i := range misses {
			fmt.Printf("%d,%.0f,%.0f\n", i, misses[i], retired[i])
		}
	case "spark":
		fmt.Printf("%s over %d periods (correlation %.3f)\n",
			p.Name, len(misses), stats.Correlation(misses, retired))
		fmt.Printf("  LLC misses    %s\n", report.Sparkline(misses, 100))
		fmt.Printf("  instr retired %s\n", report.Sparkline(retired, 100))
	case "hist":
		max := stats.Percentile(misses, 100) + 1
		h := stats.NewHistogram(0, max, 16)
		for _, v := range misses {
			h.Add(v)
		}
		fmt.Printf("%s: distribution of LLC misses per period over %d periods\n", p.Name, len(misses))
		fmt.Printf("(median %.0f, p90 %.0f)\n", h.Quantile(0.5), h.Quantile(0.9))
		if err := h.Render(os.Stdout, 50); err != nil {
			fmt.Fprintf(os.Stderr, "caer-trace: %v\n", err)
			os.Exit(1)
		}
	case "phases":
		phases := trace.DetectPhases(misses, 8, 0.8, 50)
		fmt.Printf("%s: %d phases over %d periods\n", p.Name, len(phases), len(misses))
		for i, ph := range phases {
			fmt.Printf("  phase %d: periods [%d,%d) length %d, mean %.0f misses/period\n",
				i, ph.Start, ph.End, ph.Len(), ph.Mean)
		}
	default:
		fmt.Fprintf(os.Stderr, "caer-trace: unknown format %q\n", *format)
		os.Exit(1)
	}
}
