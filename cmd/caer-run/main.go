// Command caer-run executes one co-location scenario — a latency-sensitive
// benchmark next to a batch adversary, either unmanaged or under a CAER
// heuristic — and prints the paper's metrics for it.
//
// Usage:
//
//	caer-run -latency mcf [-batch lbm] [-mode caer|colo|alone]
//	         [-heuristic rule|shutter|random] [-seed N] [-adaptive]
//	         [-dvfs N] [-usage-thresh N] [-impact F]
//	         [-telemetry addr]
//
// Example:
//
//	caer-run -latency mcf -mode caer -heuristic rule
package main

import (
	"flag"
	"fmt"
	"os"

	"caer/internal/caer"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

func main() {
	latency := flag.String("latency", "mcf", "latency-sensitive benchmark (short or full name)")
	batch := flag.String("batch", "lbm", "batch adversary benchmark")
	mode := flag.String("mode", "caer", "execution mode: alone, colo, caer")
	heuristic := flag.String("heuristic", "rule", "CAER heuristic: shutter, rule, random, hybrid")
	seed := flag.Int64("seed", 1, "seed for all runs")
	adaptive := flag.Bool("adaptive", false, "use the adaptive red-light/green-light response")
	dvfs := flag.Int("dvfs", 0, "respond by down-clocking to 1/N speed instead of pausing (0 = pause)")
	usageThresh := flag.Float64("usage-thresh", 0, "override the rule-based usage threshold")
	impact := flag.Float64("impact", 0, "override the shutter impact factor (QoS knob)")
	logTail := flag.Int("log", 0, "dump the last N engine decisions after the run")
	telemetryAddr := flag.String("telemetry", "", "serve live telemetry (/metrics, /trace, /debug/pprof) on this address, e.g. :6060")
	flag.Parse()

	if *telemetryAddr != "" {
		ln, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "[telemetry: http://%s/metrics]\n", ln.Addr())
	}

	lat, ok := spec.ByName(*latency)
	if !ok {
		fatalf("unknown latency benchmark %q", *latency)
	}
	bat, ok := spec.ByName(*batch)
	if !ok {
		fatalf("unknown batch benchmark %q", *batch)
	}

	cfg := caer.DefaultConfig()
	cfg.AdaptiveResponse = *adaptive
	if *usageThresh > 0 {
		cfg.UsageThresh = *usageThresh
	}
	if *impact > 0 {
		cfg.ImpactFactor = *impact
	}

	s := runner.Scenario{Latency: lat, Batch: bat, Seed: *seed, Config: cfg}
	switch *mode {
	case "alone":
		s.Mode = runner.ModeAlone
	case "colo":
		s.Mode = runner.ModeNativeColo
	case "caer":
		s.Mode = runner.ModeCAER
		switch *heuristic {
		case "shutter":
			s.Heuristic = caer.HeuristicShutter
		case "rule":
			s.Heuristic = caer.HeuristicRule
		case "random":
			s.Heuristic = caer.HeuristicRandom
		case "hybrid":
			s.Heuristic = caer.HeuristicHybrid
		default:
			fatalf("unknown heuristic %q", *heuristic)
		}
	default:
		fatalf("unknown mode %q", *mode)
	}
	if *dvfs > 0 {
		s.Actuator = caer.DVFSActuator(*dvfs)
	}

	r := runner.Run(s)
	alone := runner.Run(runner.Scenario{Latency: lat, Mode: runner.ModeAlone, Seed: *seed})

	fmt.Printf("scenario: %s vs %s, mode %s", lat.Name, bat.Name, s.Mode)
	if s.Mode == runner.ModeCAER {
		fmt.Printf(" (%s)", s.Heuristic)
	}
	fmt.Println()
	fmt.Printf("  periods:                  %d (alone: %d)\n", r.Periods, alone.Periods)
	fmt.Printf("  slowdown vs alone:        %s\n", report.Times(runner.Slowdown(r, alone)))
	fmt.Printf("  latency app instructions: %d (LLC misses %d)\n", r.LatencyInstructions, r.LatencyMisses)
	if s.Mode != runner.ModeAlone {
		fmt.Printf("  batch instructions:       %d (LLC misses %d, relaunches %d)\n",
			r.BatchInstructions, r.BatchMisses, r.Relaunches)
		fmt.Printf("  utilization gained:       %s\n", report.Percent(runner.UtilizationGained(r)))
	}
	if s.Mode == runner.ModeCAER {
		fmt.Printf("  verdicts:                 %d contention / %d clear\n", r.CPositive, r.CNegative)
		fmt.Printf("  batch paused:             %d periods (%s of run)\n",
			r.PausedPeriods, report.Percent(float64(r.PausedPeriods)/float64(r.Periods)))
		colo := runner.Run(runner.Scenario{Latency: lat, Batch: bat, Mode: runner.ModeNativeColo, Seed: *seed})
		if colo.Periods > alone.Periods {
			fmt.Printf("  interference eliminated:  %s (native colo was %s)\n",
				report.Percent(runner.InterferenceEliminated(r, colo, alone)),
				report.Times(runner.Slowdown(colo, alone)))
		}
		if *logTail > 0 {
			log := r.DecisionLog
			if len(log) > *logTail {
				log = log[len(log)-*logTail:]
			}
			fmt.Printf("  last %d engine decisions:\n", len(log))
			for _, ev := range log {
				fmt.Printf("    %s\n", ev)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-run: "+format+"\n", args...)
	os.Exit(1)
}
