package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caer/internal/fleet"
	"caer/internal/sched"
	"caer/internal/slo"
	"caer/internal/telemetry"
)

// writeBundle builds a synthetic doctor bundle in dir: a counter that
// bursts over periods [100, 200) against a 0.25/period budget (burn 4x),
// a sparse-probed monitor lane, a degraded span covering the burst, and a
// two-decision fleet log.
func writeBundle(t *testing.T, dir string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	c := reg.Counter("caer_test_degraded_total", "synthetic degraded ticks")
	s := telemetry.NewSeries(reg, 512)
	for p := 0; p < 300; p++ {
		if p >= 100 && p < 200 {
			c.Inc()
		}
		s.Sample()
	}
	var buf bytes.Buffer
	if err := s.WriteDump(&buf); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	mustWrite(t, filepath.Join(dir, "SLO_series.json"), buf.Bytes())

	objs := []slo.Objective{{
		Name: "degraded-budget", Metric: "caer_test_degraded_total",
		Kind: slo.KindBudget, Budget: 0.25, Window: 64,
	}}
	mustWrite(t, filepath.Join(dir, "SLO_objectives.json"), mustJSON(t, objs))

	events := fleet.EventsDump{
		Policy: "telemetry", Ticks: 300,
		Fleet: []fleet.Decision{
			{Tick: 90, Kind: fleet.DecisionDispatch, Job: 0, Name: "lbm", From: -1, To: 0, Fresh: true},
			{Tick: 120, Kind: fleet.DecisionDispatch, Job: 1, Name: "lbm", From: -1, To: 0},
		},
		Machines: [][]sched.Decision{{
			{Period: 95, Kind: sched.DecisionAdmit, Job: 0, Name: "lbm"},
		}},
	}
	mustWrite(t, filepath.Join(dir, "SLO_events.json"), mustJSON(t, events))

	trace := []telemetry.ChromeEvent{
		{Name: "thread_name", Phase: "M", Tid: 7, Args: map[string]any{"name": "latency/mcf"}},
		{Name: "probe", Phase: "X", Tid: 7, Ts: 90 * periodMicros, Dur: 2 * periodMicros},
		{Name: "degraded", Phase: "X", Tid: 7, Ts: 100 * periodMicros, Dur: 100 * periodMicros,
			Args: map[string]any{"value": 1.0}},
	}
	var tb bytes.Buffer
	if err := telemetry.WriteChromeTrace(&tb, trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	mustWrite(t, filepath.Join(dir, "SLO_trace.json"), tb.Bytes())
}

func mustWrite(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		io.Copy(&sb, r)
		done <- sb.String()
	}()
	fn()
	w.Close()
	return <-done
}

// TestDoctorDiagnosesBundle drives the doctor's whole pipeline — load,
// replay, diagnose — over a synthetic bundle and checks the printed causal
// chain names the violation, the burn window, the smoking-gun span, the
// probe silence, and the joined decisions.
func TestDoctorDiagnosesBundle(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir)

	series := loadSeries(filepath.Join(dir, "SLO_series.json"))
	objectives := loadObjectives(filepath.Join(dir, "SLO_objectives.json"))
	events := loadEvents(filepath.Join(dir, "SLO_events.json"))
	spans, lanes := loadTrace(filepath.Join(dir, "SLO_trace.json"))
	if events == nil || spans == nil {
		t.Fatal("optional bundle files did not load")
	}
	if lanes[7] != "latency/mcf" {
		t.Fatalf("lane map %v missing thread_name join", lanes)
	}

	reports := slo.Replay(series, objectives)
	var episodes int
	out := captureStdout(t, func() {
		for _, r := range reports {
			for _, ep := range r.Episodes {
				episodes++
				diagnose(episodes, r, ep, series, events, spans, lanes, 64)
			}
		}
	})
	if episodes != 1 {
		t.Fatalf("replay found %d episodes, want 1", episodes)
	}
	for _, want := range []string{
		"VIOLATION 1: degraded-budget firing",
		"rate(caer_test_degraded_total) < 0.25/period",
		"burn window:",
		"degraded span on latency/mcf",
		"monitor mostly silent on latency/mcf",
		"fleet decisions in window: 2",
		"fresh telemetry view",
		"stale/synchronous view",
		"m0 scheduler decisions in window: 1 admit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, out)
		}
	}
}

// TestDoctorOptionalFilesAbsent pins the events/trace files as optional:
// missing paths load as nil and the diagnosis still runs on series alone.
func TestDoctorOptionalFilesAbsent(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir)
	if ev := loadEvents(filepath.Join(dir, "nope.json")); ev != nil {
		t.Error("missing events file did not load as nil")
	}
	spans, lanes := loadTrace(filepath.Join(dir, "nope.json"))
	if spans != nil || lanes != nil {
		t.Error("missing trace file did not load as nil")
	}
	series := loadSeries(filepath.Join(dir, "SLO_series.json"))
	objectives := loadObjectives(filepath.Join(dir, "SLO_objectives.json"))
	reports := slo.Replay(series, objectives)
	out := captureStdout(t, func() {
		for _, r := range reports {
			for i, ep := range r.Episodes {
				diagnose(i+1, r, ep, series, nil, nil, nil, 64)
			}
		}
	})
	if !strings.Contains(out, "VIOLATION 1") || strings.Contains(out, "trace:") {
		t.Errorf("series-only diagnosis wrong:\n%s", out)
	}
}

func TestCountLineDeterministic(t *testing.T) {
	in := map[string]int{"admit": 3, "complete": 2, "migrate": 1}
	want := "3 admit, 2 complete, 1 migrate"
	for i := 0; i < 16; i++ {
		if got := countLine(in); got != want {
			t.Fatalf("countLine = %q, want %q", got, want)
		}
	}
}

func TestLabelSuffix(t *testing.T) {
	if got := labelSuffix(nil); got != "" {
		t.Errorf("empty selector rendered %q", got)
	}
	if got := labelSuffix([]string{"service", "mcf"}); got != `{service="mcf"}` {
		t.Errorf("selector rendered %q", got)
	}
}
