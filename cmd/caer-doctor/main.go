// Command caer-doctor is the offline SLO diagnosis tool: it joins a
// time-series dump, the armed SLO objectives, the fleet/scheduler decision
// logs, and the Chrome span trace — the bundle `caer-bench -slo` writes —
// and prints, per SLO violation, the causal chain that explains it: the
// burn window, the firing alert's trajectory, the fail-open degraded spans
// and probe silence inside the window, and the placement decisions that
// loaded the machine in the periods leading in.
//
// Usage:
//
//	caer-doctor [-dir DIR] [-series FILE] [-objectives FILE]
//	            [-events FILE] [-trace FILE] [-lead N]
//
// -dir points at a bundle directory holding SLO_series.json,
// SLO_objectives.json, SLO_events.json, and SLO_trace.json (the individual
// flags override single files; events and trace are optional — without
// them the doctor still replays the alerts, just with less provenance).
// -lead widens the decision join window before each episode (default 64
// periods, one slow window).
//
// The replay drives the same burn-rate state machine the live engines run
// (slo.Replay), so the diagnosis is byte-faithful to what fired online:
// every firing episode printed here is one the live engine raised, and
// vice versa.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"caer/internal/fleet"
	"caer/internal/slo"
	"caer/internal/telemetry"
)

// periodMicros mirrors the trace export: one period = 1 ms = 1000 us.
const periodMicros = 1000

func main() {
	dir := flag.String("dir", ".", "bundle directory (SLO_series.json, SLO_objectives.json, SLO_events.json, SLO_trace.json)")
	seriesPath := flag.String("series", "", "time-series dump (default DIR/SLO_series.json)")
	objectivesPath := flag.String("objectives", "", "armed objectives JSON (default DIR/SLO_objectives.json)")
	eventsPath := flag.String("events", "", "decision-log dump (default DIR/SLO_events.json; optional)")
	tracePath := flag.String("trace", "", "Chrome span trace (default DIR/SLO_trace.json; optional)")
	lead := flag.Int("lead", 64, "periods before each episode to include in the decision join")
	flag.Parse()

	pick := func(override, name string) string {
		if override != "" {
			return override
		}
		return filepath.Join(*dir, name)
	}

	series := loadSeries(pick(*seriesPath, "SLO_series.json"))
	objectives := loadObjectives(pick(*objectivesPath, "SLO_objectives.json"))
	events := loadEvents(pick(*eventsPath, "SLO_events.json"))
	spans, lanes := loadTrace(pick(*tracePath, "SLO_trace.json"))

	fmt.Printf("caer-doctor: %d samples (periods [%d, %d)), %d tracks, %d objectives\n",
		series.Retained(), series.FirstRetained(), series.Samples(),
		len(series.Tracks()), len(objectives))
	if events != nil {
		fmt.Printf("events: policy %s over %d ticks, %d fleet decisions, %d machines\n",
			events.Policy, events.Ticks, len(events.Fleet), len(events.Machines))
	}
	if spans != nil {
		fmt.Printf("trace: %d spans on %d lanes\n", len(spans), len(lanes))
	}

	reports := slo.Replay(series, objectives)
	violations := 0
	for _, r := range reports {
		for _, ep := range r.Episodes {
			violations++
			diagnose(violations, r, ep, series, events, spans, lanes, *lead)
		}
	}
	for _, r := range reports {
		if len(r.Episodes) == 0 {
			fmt.Printf("\nobjective %s: healthy — never fired over %d evaluated periods (final state %s)\n",
				r.Objective.Name, series.Retained(), r.Final)
		}
	}
	if violations == 0 {
		fmt.Println("\ndiagnosis: no SLO violations in this bundle")
		return
	}
	fmt.Printf("\ndiagnosis: %d SLO violation(s); see causal chains above\n", violations)
}

// diagnose prints one firing episode's causal chain.
func diagnose(n int, r slo.AlertReport, ep slo.Episode,
	series *telemetry.Series, events *fleet.EventsDump,
	spans []telemetry.ChromeEvent, lanes map[int]string, lead int) {

	obj := r.Objective
	open := ""
	if ep.Open {
		open = ", still open at end of series"
	}
	fmt.Printf("\nVIOLATION %d: %s firing over periods [%d, %d] (%d periods, peak slow burn %.2fx%s)\n",
		n, obj.Name, ep.Start, ep.End, ep.End-ep.Start+1, ep.PeakBurn, open)
	switch obj.Kind {
	case slo.KindQuantile:
		fmt.Printf("  objective: p%g(%s%s) < %g periods, windows %d/%d, burn threshold %gx\n",
			obj.Quantile*100, obj.Metric, labelSuffix(obj.LabelKV), obj.Bound,
			obj.FastWindow, obj.Window, obj.Burn)
	case slo.KindBudget:
		fmt.Printf("  objective: rate(%s%s) < %g/period, windows %d/%d, burn threshold %gx\n",
			obj.Metric, labelSuffix(obj.LabelKV), obj.Budget,
			obj.FastWindow, obj.Window, obj.Burn)
	}
	if tr, ok := series.Lookup(obj.Metric, obj.LabelKV...); ok {
		end := int(ep.End) + 1
		window := int(ep.End-ep.Start) + 1
		switch obj.Kind {
		case slo.KindBudget:
			fmt.Printf("  burn window: mean rate %.3f/period over the episode (budget %g)\n",
				series.RateAt(tr, end, window), obj.Budget)
		case slo.KindQuantile:
			fmt.Printf("  burn window: %.1f%% of observations over the %g-period bound (budget %.1f%%)\n",
				100*series.OverShareAt(tr, end, window, obj.Bound), obj.Bound, 100*(1-obj.Quantile))
		}
	}

	joinTrace(ep, spans, lanes, lead)
	joinDecisions(ep, events, lead)
}

// joinTrace summarizes the span trace inside the episode window: degraded
// (fail-open) spans and alert spans are the smoking guns, probe counts on
// the latency lanes expose monitor silence.
func joinTrace(ep slo.Episode, spans []telemetry.ChromeEvent, lanes map[int]string, lead int) {
	if spans == nil {
		return
	}
	lo := float64(int64(ep.Start)-int64(lead)) * periodMicros
	hi := float64(ep.End+1) * periodMicros
	kindCounts := map[string]int{}
	probesByLane := map[string]int{}
	var guns []string
	for _, e := range spans {
		if e.Phase != "X" || e.Ts+e.Dur < lo || e.Ts > hi {
			continue
		}
		kindCounts[e.Name]++
		lane := lanes[e.Tid]
		switch e.Name {
		case "probe":
			probesByLane[lane] += int(e.Dur / periodMicros)
		case "degraded", "alert":
			guns = append(guns, fmt.Sprintf("%s span on %s over [%d, %d] (value %g)",
				e.Name, lane, int(e.Ts/periodMicros), int((e.Ts+e.Dur)/periodMicros)-1,
				e.ArgNumber("value")))
		}
	}
	if len(kindCounts) == 0 {
		fmt.Printf("  trace: no spans retained in the window\n")
		return
	}
	fmt.Printf("  trace (window + %d lead): %s\n", lead, countLine(kindCounts))
	for _, g := range guns {
		fmt.Printf("    %s\n", g)
	}
	windowLen := int(ep.End-ep.Start) + 1 + lead
	var silent []string
	for lane, covered := range probesByLane {
		if strings.Contains(lane, "latency/") && covered < windowLen/2 {
			silent = append(silent, fmt.Sprintf("%s (%d/%d periods probed)", lane, covered, windowLen))
		}
	}
	sort.Strings(silent)
	for _, s := range silent {
		fmt.Printf("    monitor mostly silent on %s — probable monitor outage / comm staleness\n", s)
	}
}

// joinDecisions summarizes fleet and per-machine scheduler decisions in
// the episode window plus the lead-in: the placement provenance of the
// load the machine carried while it burned.
func joinDecisions(ep slo.Episode, events *fleet.EventsDump, lead int) {
	if events == nil {
		return
	}
	lo := int64(ep.Start) - int64(lead)
	hi := int64(ep.End)
	var fleetLines []string
	for _, d := range events.Fleet {
		if int64(d.Tick) < lo || int64(d.Tick) > hi {
			continue
		}
		freshness := "stale/synchronous view"
		if d.Fresh {
			freshness = "fresh telemetry view"
		}
		fleetLines = append(fleetLines, fmt.Sprintf("tick %d: %s %s(job %d) -> m%d (%s)",
			d.Tick, d.Kind, d.Name, d.Job, d.To, freshness))
	}
	fmt.Printf("  fleet decisions in window: %d\n", len(fleetLines))
	for i, l := range fleetLines {
		if i == 8 {
			fmt.Printf("    ... %d more\n", len(fleetLines)-8)
			break
		}
		fmt.Printf("    %s\n", l)
	}
	for k, log := range events.Machines {
		counts := map[string]int{}
		for _, d := range log {
			if int64(d.Period) < lo || int64(d.Period) > hi {
				continue
			}
			counts[d.Kind.String()]++
		}
		if len(counts) > 0 {
			fmt.Printf("  m%d scheduler decisions in window: %s\n", k, countLine(counts))
		}
	}
}

// labelSuffix renders an objective's label selector.
func labelSuffix(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var parts []string
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// countLine renders a kind-count map deterministically.
func countLine(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	return strings.Join(parts, ", ")
}

func loadSeries(path string) *telemetry.Series {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open series: %v", err)
	}
	defer f.Close()
	s, err := telemetry.ParseSeries(f)
	if err != nil {
		fatalf("parse series %s: %v", path, err)
	}
	return s
}

func loadObjectives(path string) []slo.Objective {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open objectives: %v", err)
	}
	defer f.Close()
	var objs []slo.Objective
	if err := json.NewDecoder(f).Decode(&objs); err != nil {
		fatalf("parse objectives %s: %v", path, err)
	}
	if len(objs) == 0 {
		fatalf("objectives %s is empty", path)
	}
	return objs
}

// loadEvents returns nil when the file is absent (events are optional).
func loadEvents(path string) *fleet.EventsDump {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	d, err := fleet.ParseEvents(f)
	if err != nil {
		fatalf("parse events %s: %v", path, err)
	}
	return d
}

// loadTrace returns (nil, nil) when the file is absent (trace optional);
// lanes maps track ids (Chrome tids) to their thread names.
func loadTrace(path string) ([]telemetry.ChromeEvent, map[int]string) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil
	}
	defer f.Close()
	events, err := telemetry.ParseChromeTrace(f)
	if err != nil {
		fatalf("parse trace %s: %v", path, err)
	}
	lanes := make(map[int]string)
	for _, e := range events {
		if e.Phase == "M" && e.Name == "thread_name" {
			if name, ok := e.Args["name"].(string); ok {
				lanes[e.Tid] = name
			}
		}
	}
	return events, lanes
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-doctor: "+format+"\n", args...)
	os.Exit(1)
}
