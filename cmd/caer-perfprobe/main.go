// Command caer-perfprobe demonstrates the CAER runtime's PMU abstraction
// against real hardware counters via perf_event_open(2): it samples the
// LLC-miss and instruction-retirement counters of one CPU with the same
// read-and-restart probing discipline the simulated runtime uses.
//
// Requires counter access (kernel.perf_event_paranoid <= 2, or CAP_PERFMON);
// on locked-down systems it reports the error and exits.
//
// Usage:
//
//	caer-perfprobe [-cpu 0] [-samples 10] [-interval 1ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"caer/internal/perf"
	"caer/internal/pmu"
)

func main() {
	cpu := flag.Int("cpu", 0, "CPU to monitor")
	samples := flag.Int("samples", 10, "number of periodic probes")
	interval := flag.Duration("interval", time.Millisecond, "probe period (the paper uses 1ms)")
	flag.Parse()

	events := []pmu.Event{pmu.EventLLCMisses, pmu.EventLLCAccesses, pmu.EventInstrRetired, pmu.EventCycles}
	src, err := perf.NewSource([]int{*cpu}, events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caer-perfprobe: %v\n", err)
		fmt.Fprintln(os.Stderr, "hint: echo 1 | sudo tee /proc/sys/kernel/perf_event_paranoid")
		os.Exit(1)
	}
	defer src.Close()

	sampler := pmu.NewSampler(pmu.New(src, 0), events, false)
	fmt.Printf("probing CPU %d every %v (%d samples)\n", *cpu, *interval, *samples)
	fmt.Printf("%-8s %-14s %-14s %-16s %-14s\n", "period", "llc_misses", "llc_refs", "instr_retired", "cycles")
	for i := 0; i < *samples; i++ {
		time.Sleep(*interval)
		s := sampler.Probe()
		fmt.Printf("%-8d %-14d %-14d %-16d %-14d\n", s.Period,
			s.Values[pmu.EventLLCMisses], s.Values[pmu.EventLLCAccesses],
			s.Values[pmu.EventInstrRetired], s.Values[pmu.EventCycles])
	}
}
