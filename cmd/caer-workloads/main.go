// Command caer-workloads inspects the synthetic SPEC2006-like benchmark
// suite: for each profile it prints its sensitivity class, execution
// parameters and measured alone-run characteristics on the scaled machine
// (instructions per period, LLC misses per period, detected phase count).
//
// Usage:
//
//	caer-workloads [-bench mcf] [-periods 300]
package main

import (
	"flag"
	"fmt"
	"os"

	"caer/internal/machine"
	"caer/internal/report"
	"caer/internal/spec"
	"caer/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "inspect only this benchmark (default: all)")
	periods := flag.Int("periods", 300, "measurement window in periods (after 50 warm-up)")
	flag.Parse()

	var profiles []spec.Profile
	if *bench == "" {
		profiles = spec.All()
	} else {
		p, ok := spec.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "caer-workloads: unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		profiles = []spec.Profile{p}
	}

	t := report.NewTable("benchmark", "class", "mem_frac", "base_cpi", "instructions",
		"instr/period", "misses/period", "phases")
	for _, p := range profiles {
		instr, misses, phases := characterize(p, *periods)
		t.AddRow(p.Name, p.Class.String(),
			fmt.Sprintf("%.2f", p.Exec.MemFraction),
			fmt.Sprintf("%.2f", p.Exec.BaseCPI),
			fmt.Sprintf("%d", p.Exec.Instructions),
			fmt.Sprintf("%.0f", instr),
			fmt.Sprintf("%.1f", misses),
			fmt.Sprintf("%d", phases))
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "caer-workloads: %v\n", err)
		os.Exit(1)
	}
}

// characterize measures a profile alone on the default machine.
func characterize(p spec.Profile, periods int) (instrPerPeriod, missesPerPeriod float64, phases int) {
	m := machine.New(machine.Config{Cores: 2})
	proc := p.Batch().NewProcess(0, 42)
	m.Bind(0, proc)
	for i := 0; i < 50; i++ {
		m.RunPeriod()
	}
	rec := trace.NewRecorder(m)
	for i := 0; i < periods; i++ {
		m.RunPeriod()
		rec.Tick()
	}
	tr := rec.Trace()
	var instr, misses float64
	for _, v := range tr.InstrSeries(0) {
		instr += v
	}
	for _, v := range tr.MissSeries(0) {
		misses += v
	}
	n := float64(tr.Len())
	return instr / n, misses / n, len(trace.DetectPhases(tr.MissSeries(0), 8, 0.8, 50))
}
