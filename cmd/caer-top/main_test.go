package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"caer/internal/telemetry"
)

func sampleMetrics() []telemetry.TextMetric {
	return []telemetry.TextMetric{
		{Name: "caer_engine_ticks_total", Value: 420},
		{Name: "caer_engine_verdicts_total", Labels: map[string]string{"verdict": "contention"}, Value: 7},
		{Name: "caer_engine_verdicts_total", Labels: map[string]string{"verdict": "clear"}, Value: 13},
		{Name: "caer_engine_holds_total", Value: 3},
		{Name: "caer_pmu_reads_total", Value: 840},
		{Name: "caer_comm_publishes_total", Value: 840},
		{Name: "caer_comm_period", Value: 420},
		{Name: "caer_telemetry_ops_total", Value: 1700},
		{Name: "caer_core_pressure", Labels: map[string]string{"core": "0", "app": "mcf", "role": "latency"}, Value: 900},
		{Name: "caer_core_pressure", Labels: map[string]string{"core": "1", "app": "lbm", "role": "batch"}, Value: 4500},
		{Name: "caer_core_directive", Labels: map[string]string{"core": "1", "app": "lbm", "role": "batch"}, Value: 1},
		{Name: "caer_core_degraded", Labels: map[string]string{"core": "1", "app": "lbm", "role": "batch"}, Value: 0},
	}
}

func TestRenderPerCoreView(t *testing.T) {
	var sb strings.Builder
	if err := render(&sb, "localhost:6060", sampleMetrics()); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"caer-top - localhost:6060",
		"420 ticks",
		"7 contention / 13 clear",
		"840 pmu reads",
		"mcf", "lbm",
		"pause", // core 1's directive gauge is 1
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// The latency core carries no directive gauge: shown as "-".
	mcfLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mcf") {
			mcfLine = line
		}
	}
	if !strings.Contains(mcfLine, "-") {
		t.Errorf("latency core line should show '-' directive: %q", mcfLine)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := render(&sb, "x", nil); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(sb.String(), "no per-core gauges yet") {
		t.Errorf("empty render should note missing gauges:\n%s", sb.String())
	}
}

func TestCollectCoresJoinsAndSorts(t *testing.T) {
	rows := collectCores(sampleMetrics())
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].core != "0" || rows[1].core != "1" {
		t.Errorf("rows out of order: %v", rows)
	}
	if !rows[1].hasDir || rows[1].directive != 1 {
		t.Errorf("core 1 should join its directive gauge: %+v", rows[1])
	}
	if rows[0].hasDir {
		t.Errorf("latency core 0 should have no directive gauge: %+v", rows[0])
	}
}

func TestScrape(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("caer_engine_ticks_total 42\ncaer_core_pressure{core=\"0\",app=\"mcf\",role=\"latency\"} 17\n"))
	}))
	defer srv.Close()
	metrics, err := scrape(srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if len(metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(metrics))
	}
	if metrics[1].Label("app") != "mcf" || metrics[1].Value != 17 {
		t.Errorf("unexpected metric: %+v", metrics[1])
	}
}

func TestScrapeErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := scrape(srv.URL); err == nil {
		t.Fatal("scrape of 500 endpoint should error")
	}
}

func TestBar(t *testing.T) {
	if got := bar(0.5, 10); strings.Count(got, "█") != 5 {
		t.Errorf("bar(0.5,10) = %q", got)
	}
	if got := bar(2, 4); got != "████" {
		t.Errorf("bar clamps above 1: %q", got)
	}
	if got := bar(-1, 4); got != "····" {
		t.Errorf("bar clamps below 0: %q", got)
	}
}

// fleetMetrics is a 2-machine union snapshot with SLO families.
func fleetMetrics() []telemetry.TextMetric {
	lbl := func(kv ...string) map[string]string {
		m := map[string]string{}
		for i := 0; i+1 < len(kv); i += 2 {
			m[kv[i]] = kv[i+1]
		}
		return m
	}
	return []telemetry.TextMetric{
		{Name: "caer_engine_ticks_total", Value: 99},
		{Name: "caer_core_pressure", Labels: lbl("machine", "0", "core", "0", "app", "mcf", "role", "latency"), Value: 700},
		{Name: "caer_core_pressure", Labels: lbl("machine", "0", "core", "1", "app", "lbm", "role", "batch"), Value: 4000},
		{Name: "caer_core_pressure", Labels: lbl("machine", "1", "core", "0", "app", "namd", "role", "latency"), Value: 120},
		{Name: "caer_slo_state", Labels: lbl("machine", "0", "slo", "latency-mcf"), Value: 2},
		{Name: "caer_slo_burn_fast", Labels: lbl("machine", "0", "slo", "latency-mcf"), Value: 3.5},
		{Name: "caer_slo_burn_slow", Labels: lbl("machine", "0", "slo", "latency-mcf"), Value: 2.25},
		{Name: "caer_slo_alerts_total", Labels: lbl("machine", "0", "slo", "latency-mcf"), Value: 1},
		{Name: "caer_slo_state", Labels: lbl("machine", "1", "slo", "latency-namd"), Value: 0},
		{Name: "caer_slo_evals_total", Labels: lbl("machine", "1"), Value: 99},
	}
}

func TestRenderFleetMode(t *testing.T) {
	var sb strings.Builder
	if err := render(&sb, "x", fleetMetrics()); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"machine",     // machine column header appears in fleet mode
		"m0", "m1",    // group labels
		"alerts:",     // alerts pane
		"latency-mcf", "firing", "3.50", "2.25",
		"latency-namd", "inactive",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet render missing %q:\n%s", want, out)
		}
	}
}

func TestFilterMachine(t *testing.T) {
	got := filterMachine(fleetMetrics(), "1")
	for _, m := range got {
		if v := m.Label("machine"); v != "" && v != "1" {
			t.Fatalf("filter kept machine %q: %+v", v, m)
		}
	}
	// Unlabelled spine metrics survive the filter.
	found := false
	for _, m := range got {
		if m.Name == "caer_engine_ticks_total" {
			found = true
		}
	}
	if !found {
		t.Error("filter dropped the unlabelled process-global series")
	}
	var sb strings.Builder
	if err := render(&sb, "x", got); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	if strings.Contains(out, "mcf") || !strings.Contains(out, "namd") {
		t.Errorf("-machine 1 view should show only machine 1:\n%s", out)
	}
}

func TestRenderNonFleetHasNoMachineColumn(t *testing.T) {
	var sb strings.Builder
	if err := render(&sb, "x", sampleMetrics()); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	if strings.Contains(out, "machine") || strings.Contains(out, "alerts:") {
		t.Errorf("single-machine render grew fleet chrome:\n%s", out)
	}
}
