// Command caer-top renders a refreshing per-core view of a live CAER
// deployment from the telemetry endpoint another caer command serves with
// -telemetry: per-core contention pressure, the current directive, and
// degraded (fail-open) state, plus the headline pipeline counters.
//
// Usage:
//
//	caer-run -latency mcf -mode caer -telemetry :6060 &
//	caer-top -addr localhost:6060
//	caer-top -addr localhost:6060 -once
//	caer-top -addr localhost:6060 -interval 500ms -iterations 10
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"caer/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "telemetry endpoint to scrape (host:port)")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	iterations := flag.Int("iterations", 0, "number of refreshes before exiting (0 = until interrupted)")
	once := flag.Bool("once", false, "print a single snapshot without clearing the screen")
	flag.Parse()

	if *once {
		*iterations = 1
	}
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		metrics, err := scrape("http://" + *addr + "/metrics")
		if err != nil {
			fatalf("%v", err)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		if err := render(os.Stdout, *addr, metrics); err != nil {
			fatalf("render: %v", err)
		}
		if *iterations != 0 && i == *iterations-1 {
			break
		}
		time.Sleep(*interval)
	}
}

// scrape fetches and parses one Prometheus-text snapshot.
func scrape(url string) ([]telemetry.TextMetric, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	metrics, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return metrics, nil
}

// coreRow is one core's live state assembled from the caer_core_* gauges.
type coreRow struct {
	core      string
	app       string
	role      string
	pressure  float64
	directive float64
	hasDir    bool
	degraded  bool
}

// render writes one snapshot of the per-core view. Split from main so tests
// can drive it with a synthetic metric set.
func render(w io.Writer, addr string, metrics []telemetry.TextMetric) error {
	value := func(name string) float64 {
		var total float64
		for _, m := range metrics {
			if m.Name == name {
				total += m.Value
			}
		}
		return total
	}
	labeled := func(name, key, val string) float64 {
		for _, m := range metrics {
			if m.Name == name && m.Label(key) == val {
				return m.Value
			}
		}
		return 0
	}

	fmt.Fprintf(w, "caer-top - %s\n\n", addr)
	fmt.Fprintf(w, "pipeline: %.0f ticks, %.0f contention / %.0f clear verdicts, %.0f holds, %.0f watchdog trips\n",
		value("caer_engine_ticks_total"),
		labeled("caer_engine_verdicts_total", "verdict", "contention"),
		labeled("caer_engine_verdicts_total", "verdict", "clear"),
		value("caer_engine_holds_total"),
		value("caer_engine_watchdog_trips_total"))
	fmt.Fprintf(w, "sampling: %.0f pmu reads, %.0f publishes, %.0f telemetry ops (period %.0f)\n\n",
		value("caer_pmu_reads_total"),
		value("caer_comm_publishes_total"),
		value("caer_telemetry_ops_total"),
		value("caer_comm_period"))

	rows := collectCores(metrics)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no per-core gauges yet (is a deployment stepping?)")
		return nil
	}
	maxPressure := 1.0
	for _, r := range rows {
		if r.pressure > maxPressure {
			maxPressure = r.pressure
		}
	}
	fmt.Fprintf(w, "%-5s %-12s %-18s %12s  %-20s %-9s %s\n",
		"core", "app", "role", "pressure", "", "directive", "state")
	for _, r := range rows {
		dir, state := "-", "ok"
		if r.hasDir {
			if r.directive > 0 {
				dir = "pause"
			} else {
				dir = "run"
			}
		}
		if r.degraded {
			state = "DEGRADED"
		}
		fmt.Fprintf(w, "%-5s %-12s %-18s %12.0f  %-20s %-9s %s\n",
			r.core, r.app, r.role, r.pressure, bar(r.pressure/maxPressure, 20), dir, state)
	}
	return nil
}

// collectCores joins the three caer_core_* families by core label.
func collectCores(metrics []telemetry.TextMetric) []coreRow {
	byCore := map[string]*coreRow{}
	for _, m := range metrics {
		if !strings.HasPrefix(m.Name, "caer_core_") {
			continue
		}
		core := m.Label("core")
		r, ok := byCore[core]
		if !ok {
			r = &coreRow{core: core, app: m.Label("app"), role: m.Label("role")}
			byCore[core] = r
		}
		switch m.Name {
		case "caer_core_pressure":
			r.pressure = m.Value
		case "caer_core_directive":
			r.directive = m.Value
			r.hasDir = true
		case "caer_core_degraded":
			r.degraded = m.Value > 0
		}
	}
	rows := make([]coreRow, 0, len(byCore))
	for _, r := range byCore {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].core) != len(rows[j].core) {
			return len(rows[i].core) < len(rows[j].core)
		}
		return rows[i].core < rows[j].core
	})
	return rows
}

// bar renders frac of a width-cell block bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-top: "+format+"\n", args...)
	os.Exit(1)
}
