// Command caer-top renders a refreshing per-core view of a live CAER
// deployment from the telemetry endpoint another caer command serves with
// -telemetry: per-core contention pressure, the current directive, and
// degraded (fail-open) state, plus the headline pipeline counters.
//
// Fleet snapshots (caer-fleet/caer-bench -fleet serve a Registry.Union
// where every machine's series carries a machine="<k>" label) render in
// fleet mode automatically: cores group under their machine, -machine
// narrows the view to one machine, and an alerts pane summarizes every
// node's caer_slo_* burn-rate state (objective, state, fast/slow burn,
// episodes fired).
//
// Usage:
//
//	caer-run -latency mcf -mode caer -telemetry :6060 &
//	caer-top -addr localhost:6060
//	caer-top -addr localhost:6060 -once
//	caer-top -addr localhost:6060 -interval 500ms -iterations 10
//	caer-top -addr localhost:6060 -machine 2
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"caer/internal/slo"
	"caer/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "telemetry endpoint to scrape (host:port)")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	iterations := flag.Int("iterations", 0, "number of refreshes before exiting (0 = until interrupted)")
	once := flag.Bool("once", false, "print a single snapshot without clearing the screen")
	machine := flag.String("machine", "", "fleet mode: show only this machine= label value")
	flag.Parse()

	if *once {
		*iterations = 1
	}
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		metrics, err := scrape("http://" + *addr + "/metrics")
		if err != nil {
			fatalf("%v", err)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		if err := render(os.Stdout, *addr, filterMachine(metrics, *machine)); err != nil {
			fatalf("render: %v", err)
		}
		if *iterations != 0 && i == *iterations-1 {
			break
		}
		time.Sleep(*interval)
	}
}

// scrape fetches and parses one Prometheus-text snapshot.
func scrape(url string) ([]telemetry.TextMetric, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	metrics, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return metrics, nil
}

// filterMachine narrows a fleet snapshot to one machine= label value (""
// keeps everything). Unlabelled series — the process-global spine — stay:
// they are shared context, not another machine's.
func filterMachine(metrics []telemetry.TextMetric, machine string) []telemetry.TextMetric {
	if machine == "" {
		return metrics
	}
	out := metrics[:0]
	for _, m := range metrics {
		if v := m.Label("machine"); v == "" || v == machine {
			out = append(out, m)
		}
	}
	return out
}

// coreRow is one core's live state assembled from the caer_core_* gauges.
type coreRow struct {
	machine   string
	core      string
	app       string
	role      string
	pressure  float64
	directive float64
	hasDir    bool
	degraded  bool
}

// render writes one snapshot of the per-core view. Split from main so tests
// can drive it with a synthetic metric set.
func render(w io.Writer, addr string, metrics []telemetry.TextMetric) error {
	value := func(name string) float64 {
		var total float64
		for _, m := range metrics {
			if m.Name == name {
				total += m.Value
			}
		}
		return total
	}
	labeled := func(name, key, val string) float64 {
		for _, m := range metrics {
			if m.Name == name && m.Label(key) == val {
				return m.Value
			}
		}
		return 0
	}

	fmt.Fprintf(w, "caer-top - %s\n\n", addr)
	fmt.Fprintf(w, "pipeline: %.0f ticks, %.0f contention / %.0f clear verdicts, %.0f holds, %.0f watchdog trips\n",
		value("caer_engine_ticks_total"),
		labeled("caer_engine_verdicts_total", "verdict", "contention"),
		labeled("caer_engine_verdicts_total", "verdict", "clear"),
		value("caer_engine_holds_total"),
		value("caer_engine_watchdog_trips_total"))
	fmt.Fprintf(w, "sampling: %.0f pmu reads, %.0f publishes, %.0f telemetry ops (period %.0f)\n\n",
		value("caer_pmu_reads_total"),
		value("caer_comm_publishes_total"),
		value("caer_telemetry_ops_total"),
		value("caer_comm_period"))

	rows := collectCores(metrics)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no per-core gauges yet (is a deployment stepping?)")
		return renderAlerts(w, metrics)
	}
	fleet := false
	for _, r := range rows {
		if r.machine != "" {
			fleet = true
		}
	}
	maxPressure := 1.0
	for _, r := range rows {
		if r.pressure > maxPressure {
			maxPressure = r.pressure
		}
	}
	if fleet {
		fmt.Fprintf(w, "%-8s ", "machine")
	}
	fmt.Fprintf(w, "%-5s %-12s %-18s %12s  %-20s %-9s %s\n",
		"core", "app", "role", "pressure", "", "directive", "state")
	lastMachine := "\x00"
	for _, r := range rows {
		dir, state := "-", "ok"
		if r.hasDir {
			if r.directive > 0 {
				dir = "pause"
			} else {
				dir = "run"
			}
		}
		if r.degraded {
			state = "DEGRADED"
		}
		if fleet {
			cell := ""
			if r.machine != lastMachine {
				cell = "m" + r.machine
				if r.machine == "" {
					cell = "-"
				}
				lastMachine = r.machine
			}
			fmt.Fprintf(w, "%-8s ", cell)
		}
		fmt.Fprintf(w, "%-5s %-12s %-18s %12.0f  %-20s %-9s %s\n",
			r.core, r.app, r.role, r.pressure, bar(r.pressure/maxPressure, 20), dir, state)
	}
	return renderAlerts(w, metrics)
}

// alertRow is one SLO alert's live state joined from the caer_slo_*
// families by (machine, slo) labels.
type alertRow struct {
	machine  string
	slo      string
	state    float64
	hasState bool
	fast     float64
	slow     float64
	fired    float64
}

// renderAlerts writes the fleet-mode alerts pane: one row per (machine,
// objective) with the burn-rate state machine's position. Silent when the
// snapshot carries no caer_slo_* series (non-SLO deployments).
func renderAlerts(w io.Writer, metrics []telemetry.TextMetric) error {
	byKey := map[string]*alertRow{}
	for _, m := range metrics {
		if !strings.HasPrefix(m.Name, "caer_slo_") {
			continue
		}
		name := m.Label("slo")
		if name == "" {
			continue // caer_slo_evals_total has no slo label
		}
		key := m.Label("machine") + "/" + name
		r, ok := byKey[key]
		if !ok {
			r = &alertRow{machine: m.Label("machine"), slo: name}
			byKey[key] = r
		}
		switch m.Name {
		case "caer_slo_state":
			r.state = m.Value
			r.hasState = true
		case "caer_slo_burn_fast":
			r.fast = m.Value
		case "caer_slo_burn_slow":
			r.slow = m.Value
		case "caer_slo_alerts_total":
			r.fired = m.Value
		}
	}
	if len(byKey) == 0 {
		return nil
	}
	rows := make([]alertRow, 0, len(byKey))
	for _, r := range byKey {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].machine != rows[j].machine {
			if len(rows[i].machine) != len(rows[j].machine) {
				return len(rows[i].machine) < len(rows[j].machine)
			}
			return rows[i].machine < rows[j].machine
		}
		return rows[i].slo < rows[j].slo
	})
	fmt.Fprintf(w, "\nalerts:\n%-8s %-24s %-9s %10s %10s %7s\n",
		"machine", "slo", "state", "burn_fast", "burn_slow", "fired")
	for _, r := range rows {
		machine := "m" + r.machine
		if r.machine == "" {
			machine = "-"
		}
		state := "?"
		if r.hasState {
			state = slo.AlertState(int(r.state)).String()
		}
		fmt.Fprintf(w, "%-8s %-24s %-9s %10.2f %10.2f %7.0f\n",
			machine, r.slo, state, r.fast, r.slow, r.fired)
	}
	return nil
}

// collectCores joins the three caer_core_* families by core label.
func collectCores(metrics []telemetry.TextMetric) []coreRow {
	byCore := map[string]*coreRow{}
	for _, m := range metrics {
		if !strings.HasPrefix(m.Name, "caer_core_") {
			continue
		}
		machine := m.Label("machine")
		core := m.Label("core")
		key := machine + "/" + core
		r, ok := byCore[key]
		if !ok {
			r = &coreRow{machine: machine, core: core, app: m.Label("app"), role: m.Label("role")}
			byCore[key] = r
		}
		switch m.Name {
		case "caer_core_pressure":
			r.pressure = m.Value
		case "caer_core_directive":
			r.directive = m.Value
			r.hasDir = true
		case "caer_core_degraded":
			r.degraded = m.Value > 0
		}
	}
	rows := make([]coreRow, 0, len(byCore))
	for _, r := range byCore {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].machine != rows[j].machine {
			if len(rows[i].machine) != len(rows[j].machine) {
				return len(rows[i].machine) < len(rows[j].machine)
			}
			return rows[i].machine < rows[j].machine
		}
		if len(rows[i].core) != len(rows[j].core) {
			return len(rows[i].core) < len(rows[j].core)
		}
		return rows[i].core < rows[j].core
	})
	return rows
}

// bar renders frac of a width-cell block bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-top: "+format+"\n", args...)
	os.Exit(1)
}
