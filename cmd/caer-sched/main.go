// Command caer-sched demonstrates the contention-aware placement and
// admission subsystem (DESIGN.md §9): a latency-sensitive service pinned to
// domain 0 of a multi-LLC-domain machine, batch jobs flowing through the
// admission queue, and a pluggable placement policy deciding which LLC
// domain each job lands on. It prints the scheduler's decision timeline
// (admissions, migrations, completions), the per-job outcomes, and the
// latency app's quality of service.
//
// Usage:
//
//	caer-sched [-policy rr|ca|packed] [-latency mcf]
//	           [-jobs lbm,lbm,povray,lbm] [-domains N] [-cores N]
//	           [-admit-thresh F] [-aging N] [-migrate N]
//	           [-job-instr N] [-seed N] [-quick] [-telemetry addr]
//
// Examples:
//
//	caer-sched -policy rr
//	caer-sched -policy ca
//	caer-sched -policy packed -migrate 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"caer/internal/caer"
	"caer/internal/report"
	"caer/internal/runner"
	"caer/internal/sched"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

func main() {
	policy := flag.String("policy", "ca", "placement policy: rr (round-robin), ca (contention-aware), packed")
	latency := flag.String("latency", "mcf", "latency-sensitive service (short or full name)")
	jobsCSV := flag.String("jobs", "lbm,lbm,povray,lbm", "comma-separated batch jobs for the admission queue")
	domains := flag.Int("domains", 2, "number of LLC domains")
	cores := flag.Int("cores", 0, "number of cores (0 = 4 per domain)")
	admitThresh := flag.Float64("admit-thresh", 0, "admission pressure threshold (0 = default)")
	aging := flag.Int("aging", 0, "starvation aging bound in periods (0 = default)")
	migrate := flag.Int("migrate", 0, "consider one migration every N periods (0 = off)")
	jobInstr := flag.Uint64("job-instr", 500_000, "instruction count for each submitted job")
	seed := flag.Int64("seed", 1, "seed for all runs")
	quick := flag.Bool("quick", false, "shrink the latency service 8x for a fast smoke run")
	telemetryAddr := flag.String("telemetry", "", "serve live telemetry (/metrics, /trace, /debug/pprof) on this address, e.g. :6060")
	flag.Parse()

	if *telemetryAddr != "" {
		ln, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "[telemetry: http://%s/metrics]\n", ln.Addr())
	}

	var pol sched.Policy
	switch *policy {
	case "rr", "round-robin":
		pol = sched.PolicyRoundRobin
	case "ca", "contention-aware":
		pol = sched.PolicyContentionAware
	case "packed":
		pol = sched.PolicyPacked
	default:
		fatalf("unknown policy %q (want rr, ca, or packed)", *policy)
	}

	lat, ok := spec.ByName(*latency)
	if !ok {
		fatalf("unknown latency benchmark %q", *latency)
	}
	if *quick {
		lat.Exec.Instructions /= 8
	}
	var jobs []spec.Profile
	for _, n := range strings.Split(*jobsCSV, ",") {
		p, ok := spec.ByName(strings.TrimSpace(n))
		if !ok {
			fatalf("unknown job benchmark %q", n)
		}
		p.Exec.Instructions = *jobInstr
		jobs = append(jobs, p)
	}

	s := runner.Scenario{
		Latency:   lat,
		Mode:      runner.ModeScheduled,
		Heuristic: caer.HeuristicRule,
		Seed:      *seed,
		Domains:   *domains,
		Cores:     *cores,
		Jobs:      jobs,
		Sched: sched.Config{
			Policy:          pol,
			AdmitThreshold:  *admitThresh,
			AgingBound:      *aging,
			MigrationPeriod: *migrate,
		},
	}
	res := runner.Run(s)
	s = res.Scenario // Run applied the scheduled-mode defaults to its copy

	fmt.Printf("caer-sched: %s policy, %s service on domain 0, %d domains x %d cores, %d jobs\n\n",
		pol, spec.ShortName(lat.Name), s.Domains, s.Cores/s.Domains, len(jobs))

	fmt.Println("decision timeline:")
	tl := report.NewTable("period", "decision", "job", "detail")
	for _, d := range res.SchedDecisions {
		var detail string
		switch d.Kind {
		case sched.DecisionAdmit:
			detail = fmt.Sprintf("-> domain %d core %d (waited %d%s, %d queued)",
				d.To, d.Core, d.Waited, agedTag(d.Aged), d.Queued)
		case sched.DecisionMigrate:
			detail = fmt.Sprintf("domain %d -> %d (core %d)", d.From, d.To, d.Core)
		case sched.DecisionComplete:
			detail = fmt.Sprintf("freed domain %d core %d", d.From, d.Core)
		case sched.DecisionWithdraw:
			detail = fmt.Sprintf("withdrawn after waiting %d (%d queued)", d.Waited, d.Queued)
		default:
			detail = "?"
		}
		tl.AddRow(fmt.Sprintf("%d", d.Period), d.Kind.String(), d.Name, detail)
	}
	if err := tl.Render(os.Stdout); err != nil {
		fatalf("render timeline: %v", err)
	}

	fmt.Println("\nper-job outcomes:")
	jt := report.NewTable("job", "domain", "waited", "run", "paused", "duty", "migrations", "done@")
	for _, b := range res.BatchResults {
		run := b.RunPeriods
		if run+b.PausedPeriods == 0 && b.Completed {
			// No engine on a latency-free domain: every occupied period ran.
			run = b.DonePeriod - b.Admitted + 1
		}
		duty := 1.0
		if run+b.PausedPeriods > 0 {
			duty = float64(run) / float64(run+b.PausedPeriods)
		}
		jt.AddRow(b.Name, fmt.Sprintf("%d", b.Domain),
			fmt.Sprintf("%d%s", b.Waited, agedTag(b.Aged)),
			fmt.Sprintf("%d", run), fmt.Sprintf("%d", b.PausedPeriods),
			report.Percent(duty), fmt.Sprintf("%d", b.Migrations),
			fmt.Sprintf("%d", b.DonePeriod))
	}
	if err := jt.Render(os.Stdout); err != nil {
		fatalf("render jobs: %v", err)
	}

	fmt.Printf("\nlatency service finished in %d periods; %d/%d jobs completed; max queue wait %d periods; %d migrations\n",
		res.Periods, res.JobsCompleted, len(jobs), res.MaxWait, res.Migrations)
	if !res.Completed {
		fatalf("latency service did not complete within the period bound")
	}
}

func agedTag(aged bool) string {
	if aged {
		return ", aged"
	}
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-sched: "+format+"\n", args...)
	os.Exit(1)
}
