package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"caer/internal/analysis"
)

// TestDriverSeededViolations runs the driver over the seeded-violation
// testdata module and requires a non-zero exit with findings from every
// analyzer.
func TestDriverSeededViolations(t *testing.T) {
	td := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var out, errOut strings.Builder
	code := run([]string{"-C", td, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d over seeded violations, want 1 (stderr: %s)", code, errOut.String())
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(out.String(), "["+name+"]") {
			t.Errorf("driver output missing findings from %s:\n%s", name, out.String())
		}
	}
}

// TestDriverRealTreeClean requires a zero exit over the shipped tree.
func TestDriverRealTreeClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", filepath.Join("..", "..")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d over the real tree, want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

// TestDriverList checks the -list inventory.
func TestDriverList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

// TestDriverJSON checks the machine-readable output: well-formed JSON,
// every analyzer represented, exit code still 1 on findings.
func TestDriverJSON(t *testing.T) {
	td := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var out, errOut strings.Builder
	code := run([]string{"-C", td, "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("-json exit = %d over seeded violations, want 1 (stderr: %s)", code, errOut.String())
	}
	var rep struct {
		Count    int `json:"count"`
		Findings []struct {
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Analyzer string   `json:"analyzer"`
			Message  string   `json:"message"`
			Path     []string `json:"path"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Count != len(rep.Findings) || rep.Count == 0 {
		t.Fatalf("count = %d with %d findings", rep.Count, len(rep.Findings))
	}
	seen := make(map[string]bool)
	pathed := false
	for _, f := range rep.Findings {
		seen[f.Analyzer] = true
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if len(f.Path) > 1 {
			pathed = true
		}
	}
	for _, name := range analysis.AnalyzerNames() {
		if !seen[name] {
			t.Errorf("-json output missing findings from %s", name)
		}
	}
	if !pathed {
		t.Errorf("no finding carried a multi-hop call path")
	}
}

// TestDriverAnalyzerSubset checks -analyzer runs only the named checks.
func TestDriverAnalyzerSubset(t *testing.T) {
	td := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var out, errOut strings.Builder
	code := run([]string{"-C", td, "-analyzer", "enumswitch", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("-analyzer enumswitch exit = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.Contains(line, "[enumswitch]") {
			t.Errorf("subset run leaked a non-enumswitch finding: %s", line)
		}
	}
	if code := run([]string{"-analyzer", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}

// TestDriverUnusedSuppressions checks the hygiene flag is off by default
// and reported when enabled.
func TestDriverUnusedSuppressions(t *testing.T) {
	td := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var out, errOut strings.Builder
	run([]string{"-C", td, "./hygiene"}, &out, &errOut)
	if strings.Contains(out.String(), "unused suppression") {
		t.Errorf("unused suppression reported without the flag:\n%s", out.String())
	}
	out.Reset()
	errOut.Reset()
	run([]string{"-C", td, "-unused-suppressions", "./hygiene"}, &out, &errOut)
	if !strings.Contains(out.String(), "unused suppression") {
		t.Errorf("-unused-suppressions reported nothing over the hygiene fixture:\n%s", out.String())
	}
}

// TestDriverBadDir checks the error exit code.
func TestDriverBadDir(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-C", filepath.Join("..", "..", "no-such-dir")}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d for missing directory, want 2", code)
	}
}
