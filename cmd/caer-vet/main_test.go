package main

import (
	"path/filepath"
	"strings"
	"testing"

	"caer/internal/analysis"
)

// TestDriverSeededViolations runs the driver over the seeded-violation
// testdata module and requires a non-zero exit with findings from every
// analyzer.
func TestDriverSeededViolations(t *testing.T) {
	td := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var out, errOut strings.Builder
	code := run([]string{"-C", td, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d over seeded violations, want 1 (stderr: %s)", code, errOut.String())
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(out.String(), "["+name+"]") {
			t.Errorf("driver output missing findings from %s:\n%s", name, out.String())
		}
	}
}

// TestDriverRealTreeClean requires a zero exit over the shipped tree.
func TestDriverRealTreeClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", filepath.Join("..", "..")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d over the real tree, want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

// TestDriverList checks the -list inventory.
func TestDriverList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

// TestDriverBadDir checks the error exit code.
func TestDriverBadDir(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-C", filepath.Join("..", "..", "no-such-dir")}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d for missing directory, want 2", code)
	}
}
