// Command caer-vet runs the repo-specific static analysis suite over the
// CAER tree (see internal/analysis). It loads and type-checks every
// package named by its patterns using only the standard library, applies
// every analyzer, and prints findings compiler-style:
//
//	file:line:col: [analyzer] message
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
//
// Usage:
//
//	caer-vet [-C dir] [-list] [pattern ...]
//
// Patterns are package directories or "dir/..." wildcards, resolved
// against the enclosing module; the default is "./...". Findings can be
// waived in source with a documented suppression comment:
//
//	//caer:allow <analyzer>[,<analyzer>...] [reason]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"caer/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("caer-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", "", "run as if started in `dir`")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	start := *chdir
	if start == "" {
		start = "."
	}
	if st, err := os.Stat(start); err != nil || !st.IsDir() {
		fmt.Fprintf(stderr, "caer-vet: %s is not a directory\n", start)
		return 2
	}
	modRoot, modPath, err := analysis.FindModule(start)
	if err != nil {
		fmt.Fprintln(stderr, "caer-vet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.ExpandPatterns(modRoot, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "caer-vet:", err)
		return 2
	}

	findings, err := analysis.Vet(modRoot, modPath, dirs, analysis.Analyzers(), analysis.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, "caer-vet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "caer-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
