// Command caer-vet runs the repo-specific static analysis suite over the
// CAER tree (see internal/analysis). It loads and type-checks every
// package named by its patterns using only the standard library, applies
// every analyzer, and prints findings compiler-style:
//
//	file:line:col: [analyzer] message
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
//
// Usage:
//
//	caer-vet [-C dir] [-list] [-json] [-analyzer list] [-unused-suppressions] [pattern ...]
//
// Patterns are package directories or "dir/..." wildcards, resolved
// against the enclosing module; the default is "./...". -analyzer runs a
// comma-separated subset of the suite; -json emits the findings as one
// machine-readable document on stdout instead of compiler-style lines;
// -unused-suppressions additionally reports //caer:allow comments that
// waived nothing (CI turns this on so dead waivers cannot accumulate).
// Findings can be waived in source with a documented suppression comment,
// whose reason is mandatory:
//
//	//caer:allow <analyzer>[,<analyzer>...] <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"caer/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("caer-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", "", "run as if started in `dir`")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document on stdout")
	subset := fs.String("analyzer", "", "comma-separated `names` of analyzers to run (default: all)")
	unused := fs.Bool("unused-suppressions", false, "report //caer:allow comments that waived nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	start := *chdir
	if start == "" {
		start = "."
	}
	if st, err := os.Stat(start); err != nil || !st.IsDir() {
		fmt.Fprintf(stderr, "caer-vet: %s is not a directory\n", start)
		return 2
	}
	modRoot, modPath, err := analysis.FindModule(start)
	if err != nil {
		fmt.Fprintln(stderr, "caer-vet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.ExpandPatterns(modRoot, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "caer-vet:", err)
		return 2
	}

	analyzers := analysis.Analyzers()
	if *subset != "" {
		analyzers, err = analysis.SelectAnalyzers(*subset)
		if err != nil {
			fmt.Fprintln(stderr, "caer-vet:", err)
			return 2
		}
	}
	cfg := analysis.DefaultConfig()
	cfg.ReportUnusedSuppressions = *unused

	findings, err := analysis.Vet(modRoot, modPath, dirs, analyzers, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "caer-vet:", err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "caer-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "caer-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
