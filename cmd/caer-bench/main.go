// Command caer-bench regenerates the data figures of the CAER paper's
// evaluation (Figures 1, 2, 3, 6, 7, 8, 9, 10) on the simulated machine,
// printing each as an ASCII chart plus a data table, and optionally writing
// CSV files for external plotting.
//
// Usage:
//
//	caer-bench [-fig all|1|2|3|6|7|8|9|10] [-csv DIR] [-seed N]
//	           [-benchmarks mcf,namd,...] [-quick]
//	           [-ablation partition,response,tuning,adversary,multiapp|all]
//	           [-chaos] [-sched] [-sampling] [-perf] [-fleet] [-slo]
//	           [-partition] [-workers N]
//	           [-telemetry addr] [-telemetry-out FILE]
//
// -quick shrinks every benchmark's instruction count 8x for a fast smoke
// run; the published numbers in EXPERIMENTS.md use the full lengths.
//
// -chaos runs the fault-injection regime suite (DESIGN.md §8): every fault
// class (counter resets, spikes, dropped samples, probe jitter, monitor
// crashes) against the shutter, rule-based, and hybrid pairings. When -fig
// is not given explicitly, -chaos skips the figures and prints only the
// chaos table.
//
// -sched runs the scheduler regime suite (DESIGN.md §9): the same latency
// service and job mix compared across placement policies on a 2-LLC-domain
// machine, printed as a table and written as machine-readable
// BENCH_sched.json (into -csv DIR when given, else the working directory).
// Like -chaos, it skips the figures unless -fig is set explicitly.
//
// -sampling runs the detection-latency-vs-overhead sweep (DESIGN.md §13):
// a fixed seeded contention-burst trace replayed under every-period
// polling, the adaptive interval controller at several max-interval
// bounds, and threshold-interrupt mode. It exits non-zero unless every
// mode flags every burst with no false flags and the event-driven modes
// spend strictly fewer probes than polling, and writes the sweep as
// machine-readable BENCH_sampling.json (into -csv DIR when given, else
// the working directory). Skips figures unless -fig is set explicitly.
//
// -fleet runs the fleet regime suite (DESIGN.md §14): a heterogeneous
// 4-machine cluster — two small machines hosting a sensitive mcf open-loop
// service, two large ones an insensitive namd service — fed an identical
// seeded diurnal, lbm-heavy traffic schedule under each cross-machine
// placement policy. It exits non-zero unless least-pressure placement
// strictly beats round-robin on the sensitive service's p99 request latency
// at equal admitted throughput, and writes the comparison as
// machine-readable BENCH_fleet.json (into -csv DIR when given, else the
// working directory). Skips figures unless -fig is set explicitly.
//
// -partition runs the partition regime suite (DESIGN.md §16): a
// cache-sensitive omnetpp service sharing one LLC domain with
// capacity-thief batch jobs, compared across the response family —
// red-light/green-light and soft-lock throttling, LFOC-style LLC
// way-partitioning, and the hybrid of both — at equal admitted throughput.
// It exits non-zero unless the partition response strictly beats both
// pure-throttling responses on latency QoS degradation with an earlier
// batch makespan, and writes the comparison as machine-readable
// BENCH_partition.json (into -csv DIR when given, else the working
// directory). Skips figures unless -fig is set explicitly.
//
// -slo runs the SLO regime suite (DESIGN.md §15): the fleet-suite cluster
// with every node's burn-rate SLO engine armed, compared across
// least-pressure, telemetry-fed, and forced-scrape-outage placement, plus
// a seeded-violation alert battery (scripted CAER-M monitor outages on a
// single machine). It exits non-zero unless telemetry-fed placement
// matches or beats least-pressure on the sensitive p99 at equal admitted
// throughput, the outage run reproduces least-pressure exactly, and the
// battery raises exactly one firing alert per seeded violation with zero
// false positives. Writes BENCH_slo.json plus the caer-doctor bundle
// (SLO_series.json, SLO_events.json, SLO_trace.json, SLO_objectives.json)
// into -csv DIR when given, else the working directory. Skips figures
// unless -fig is set explicitly.
//
// -perf runs the performance baseline suite (DESIGN.md §11): ns/op for each
// stage of the per-period pipeline (cache step, hierarchy access, PMU probe,
// comm publish, engine tick, sched tick), periods/sec for the end-to-end
// CAER pipeline and the batched multi-domain machine, and the wall-clock
// speedup plus byte-identity check of a 4-domain scheduled scenario at
// Workers=1 versus -workers. Writes BENCH_perf.json and exits non-zero if
// the parallel run's results are not byte-identical to the serial run's.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"caer/internal/caer"
	"caer/internal/experiments"
	"caer/internal/report"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 2, 3, 6, 7, 8, 9, 10")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files into")
	seed := flag.Int64("seed", 1, "seed for all runs")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 21)")
	quick := flag.Bool("quick", false, "shrink benchmark lengths 8x for a fast smoke run")
	ablation := flag.String("ablation", "", "additionally run ablations: partition, response, tuning, adversary, multiapp (comma-separated or 'all')")
	chaos := flag.Bool("chaos", false, "run the fault-injection regime suite (skips figures unless -fig is set explicitly)")
	schedFlag := flag.Bool("sched", false, "run the scheduler regime suite and write BENCH_sched.json (skips figures unless -fig is set explicitly)")
	samplingFlag := flag.Bool("sampling", false, "run the sampling-mode sweep and write BENCH_sampling.json (skips figures unless -fig is set explicitly)")
	fleetFlag := flag.Bool("fleet", false, "run the fleet regime suite and write BENCH_fleet.json (skips figures unless -fig is set explicitly)")
	partitionFlag := flag.Bool("partition", false, "run the partition regime suite and write BENCH_partition.json (skips figures unless -fig is set explicitly)")
	sloFlag := flag.Bool("slo", false, "run the SLO regime suite and write BENCH_slo.json plus the caer-doctor bundle (skips figures unless -fig is set explicitly)")
	perfFlag := flag.Bool("perf", false, "run the performance baseline suite and write BENCH_perf.json (skips figures unless -fig is set explicitly)")
	workers := flag.Int("workers", 4, "domain-stepper worker pool size for -perf parallel measurements, -sched, -fleet, and -partition")
	telemetryAddr := flag.String("telemetry", "", "serve live telemetry (/metrics, /trace, /debug/pprof) on this address, e.g. :6060")
	telemetryOut := flag.String("telemetry-out", "", "write a Prometheus-text telemetry snapshot to this file after the run")
	flag.Parse()

	if *telemetryAddr != "" {
		ln, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "[telemetry: http://%s/metrics]\n", ln.Addr())
	}

	figSetExplicitly := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figSetExplicitly = true
		}
	})

	suite := experiments.NewSuite()
	suite.Seed = *seed
	suite.Benchmarks = selectBenchmarks(*benches, *quick)

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("create csv dir: %v", err)
		}
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	if (*chaos || *schedFlag || *perfFlag || *samplingFlag || *fleetFlag || *sloFlag || *partitionFlag) && !figSetExplicitly {
		want = map[string]bool{}
	}
	all := want["all"]
	out := os.Stdout
	start := time.Now()

	type figure interface {
		Render(io.Writer) error
	}
	type tabled interface {
		Table() *report.Table
	}
	emit := func(id string, f figure) {
		fmt.Fprintf(out, "\n")
		if err := f.Render(out); err != nil {
			fatalf("render figure %s: %v", id, err)
		}
		if t, ok := f.(tabled); ok && *csvDir != "" {
			path := filepath.Join(*csvDir, "figure"+id+".csv")
			fh, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			if err := t.Table().WriteCSV(fh); err != nil {
				fatalf("write %s: %v", path, err)
			}
			fh.Close()
			fmt.Fprintf(out, "[wrote %s]\n", path)
		}
	}

	if all || want["1"] {
		emit("1", suite.Figure1())
	}
	if all || want["2"] {
		emit("2", suite.Figure2())
	}
	if all || want["3"] {
		emit("3", suite.Figure3(0))
	}
	if all || want["6"] {
		emit("6", suite.Figure6())
	}
	if all || want["7"] {
		emit("7", suite.Figure7())
	}
	if all || want["8"] {
		emit("8", suite.Figure8())
	}
	if all || want["9"] {
		emit("9", suite.FigureAccuracy(true, 6))
	}
	if all || want["10"] {
		emit("10", suite.FigureAccuracy(false, 6))
	}

	if *ablation != "" {
		wantAbl := map[string]bool{}
		for _, a := range strings.Split(*ablation, ",") {
			wantAbl[strings.TrimSpace(a)] = true
		}
		allAbl := wantAbl["all"]
		mcf, ok := spec.ByName("mcf")
		if !ok {
			fatalf("mcf profile missing")
		}
		if *quick {
			mcf.Exec.Instructions /= 8
		}
		if allAbl || wantAbl["partition"] {
			emit("-ablation-partition", suite.PartitionSweep(mcf, []int{4, 6, 8, 10, 12, 14}))
		}
		if allAbl || wantAbl["response"] {
			emit("-ablation-response", suite.ResponseComparison(mcf))
		}
		if allAbl || wantAbl["tuning"] {
			emit("-ablation-tuning", suite.TuningSweep(mcf,
				[]float64{0.02, 0.05, 0.5, 2, 10, 25, 100},
				[]float64{50, 150, 400, 800, 1600, 3200}))
		}
		if allAbl || wantAbl["adversary"] {
			latNames := []string{"mcf", "xalancbmk", "namd"}
			var lats []spec.Profile
			for _, n := range latNames {
				p, _ := spec.ByName(n)
				if *quick {
					p.Exec.Instructions /= 8
				}
				lats = append(lats, p)
			}
			advNames := []string{"lbm", "libquantum", "milc"}
			var advs []spec.Profile
			for _, n := range advNames {
				p, _ := spec.ByName(n)
				advs = append(advs, p)
			}
			emit("-ablation-adversary", suite.AdversarySweep(lats, advs, caer.HeuristicRule))
		}
		if allAbl || wantAbl["multiapp"] {
			soplex, _ := spec.ByName("soplex")
			if *quick {
				soplex.Exec.Instructions /= 8
			}
			emit("-ablation-multiapp", suite.MultiApp(
				[2]spec.Profile{mcf, soplex},
				[2]spec.Profile{spec.LBM(), spec.LBM()},
				caer.HeuristicRule))
		}
	}
	if *chaos {
		fmt.Fprintf(out, "\nChaos regimes (fault injection, DESIGN.md §8)\n\n")
		reports := experiments.ChaosSuite(*seed, *quick)
		experiments.WriteChaosReport(out, reports)
		for _, r := range reports {
			if !r.Completed {
				fatalf("fail-open violation: %s/%s never completed", r.Heuristic, r.Fault)
			}
			if r.DegradedAtEnd {
				fatalf("fail-open violation: %s/%s still degraded after faults ceased", r.Heuristic, r.Fault)
			}
		}
		fmt.Fprintf(out, "\nall regimes fail open: latency app completed under every fault class\n")
	}
	if *perfFlag {
		fmt.Fprintf(out, "\n")
		perf := experiments.PerfSuite(*seed, *quick, *workers)
		if err := perf.Render(out); err != nil {
			fatalf("render perf baseline: %v", err)
		}
		if !perf.Speedup.Identical {
			fatalf("determinism violation: Workers=1 and Workers=%d scheduled results differ", perf.Speedup.Workers)
		}
		path := "BENCH_perf.json"
		if *csvDir != "" {
			path = filepath.Join(*csvDir, path)
		}
		fh, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		if err := perf.WriteJSON(fh); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", path)
	}
	if *schedFlag {
		fmt.Fprintf(out, "\n")
		regime := experiments.SchedRegimeSuiteWorkers(*seed, *quick, *workers)
		if err := regime.Render(out); err != nil {
			fatalf("render scheduler regimes: %v", err)
		}
		path := "BENCH_sched.json"
		if *csvDir != "" {
			path = filepath.Join(*csvDir, path)
		}
		fh, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		if err := regime.WriteJSON(fh); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", path)
	}
	if *samplingFlag {
		fmt.Fprintf(out, "\n")
		sweep := experiments.SamplingSuite(*seed, *quick)
		if err := sweep.Render(out); err != nil {
			fatalf("render sampling sweep: %v", err)
		}
		if err := sweep.Check(); err != nil {
			fatalf("sampling gate violation: %v", err)
		}
		fmt.Fprintf(out, "sampling gate holds: every mode flagged %d/%d bursts; event-driven modes probed less than polling\n",
			sweep.Bursts, sweep.Bursts)
		path := "BENCH_sampling.json"
		if *csvDir != "" {
			path = filepath.Join(*csvDir, path)
		}
		fh, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		if err := sweep.WriteJSON(fh); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", path)
	}
	if *fleetFlag {
		fmt.Fprintf(out, "\n")
		regime := experiments.FleetSuiteWorkers(*seed, *quick, *workers)
		if err := regime.Render(out); err != nil {
			fatalf("render fleet regimes: %v", err)
		}
		if err := regime.Check(); err != nil {
			fatalf("fleet gate violation: %v", err)
		}
		fmt.Fprintf(out, "fleet gate holds: least-pressure beats round-robin on sensitive-service p99 at equal admitted throughput\n")
		path := "BENCH_fleet.json"
		if *csvDir != "" {
			path = filepath.Join(*csvDir, path)
		}
		fh, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		if err := regime.WriteJSON(fh); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", path)
	}
	if *partitionFlag {
		fmt.Fprintf(out, "\n")
		regime := experiments.PartitionSuiteWorkers(*seed, *quick, *workers)
		if err := regime.Render(out); err != nil {
			fatalf("render partition regimes: %v", err)
		}
		if err := regime.Check(); err != nil {
			fatalf("partition gate violation: %v", err)
		}
		fmt.Fprintf(out, "partition gate holds: way-partitioning beats pure throttling on latency QoS with an earlier batch makespan at equal admitted throughput\n")
		path := "BENCH_partition.json"
		if *csvDir != "" {
			path = filepath.Join(*csvDir, path)
		}
		fh, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		if err := regime.WriteJSON(fh); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", path)
	}
	if *sloFlag {
		fmt.Fprintf(out, "\n")
		regime := experiments.SLOSuiteWorkers(*seed, *quick, *workers)
		if err := regime.Render(out); err != nil {
			fatalf("render slo regimes: %v", err)
		}
		if err := regime.Check(); err != nil {
			fatalf("slo gate violation: %v", err)
		}
		fmt.Fprintf(out, "slo gate holds: telemetry placement matches or beats least-pressure on sensitive p99, outage degrades exactly, every seeded violation fired exactly once\n")
		dir := "."
		if *csvDir != "" {
			dir = *csvDir
		}
		path := filepath.Join(dir, "BENCH_slo.json")
		fh, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		if err := regime.WriteJSON(fh); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", path)
		if err := regime.WriteDoctorBundle(dir); err != nil {
			fatalf("write doctor bundle: %v", err)
		}
		fmt.Fprintf(out, "[wrote %s]\n", filepath.Join(dir, "SLO_{series,events,trace,objectives}.json"))
	}
	if *telemetryOut != "" {
		fh, err := os.Create(*telemetryOut)
		if err != nil {
			fatalf("create %s: %v", *telemetryOut, err)
		}
		if err := telemetry.WriteSnapshot(fh); err != nil {
			fatalf("write telemetry snapshot: %v", err)
		}
		fh.Close()
		fmt.Fprintf(out, "[wrote %s]\n", *telemetryOut)
	}
	fmt.Fprintf(out, "\n[%s elapsed]\n", time.Since(start).Round(time.Millisecond))
}

func selectBenchmarks(csv string, quick bool) []spec.Profile {
	var out []spec.Profile
	if csv == "" {
		out = spec.All()
	} else {
		for _, n := range strings.Split(csv, ",") {
			p, ok := spec.ByName(strings.TrimSpace(n))
			if !ok {
				fatalf("unknown benchmark %q", n)
			}
			out = append(out, p)
		}
	}
	if quick {
		for i := range out {
			out[i].Exec.Instructions /= 8
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-bench: "+format+"\n", args...)
	os.Exit(1)
}
