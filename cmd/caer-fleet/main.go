// Command caer-fleet runs the cluster-level contention-aware scheduling
// stack (DESIGN.md §14): N simulated machines — the first half hosting a
// latency-sensitive open-loop service, the rest an insensitive background
// one — fed a seeded open-loop traffic schedule, with a pluggable
// cross-machine placement policy deciding which machine each job lands on.
// It prints the fleet throughput, the cluster-wide job queueing
// distributions, and every latency app's QoS at p50/p99, plus the merged
// fleet-wide distribution of the sensitive service class.
//
// Usage:
//
//	caer-fleet [-machines N] [-policy rr|lp|packed] [-jobs lbm,lbm,povray,lbm]
//	           [-curve constant|diurnal|burst] [-rate F] [-horizon N]
//	           [-sensitive mcf] [-background namd] [-migrate N]
//	           [-usage-thresh N] [-periods N] [-seed N] [-workers N] [-quick]
//	           [-serve addr] [-metrics-out FILE] [-trace FILE]
//
// Examples:
//
//	caer-fleet -quick
//	caer-fleet -policy rr -curve burst -rate 0.05
//	caer-fleet -machines 8 -migrate 50 -serve :6060
//
// -serve exposes the merged fleet telemetry (/metrics with machine labels,
// /trace with per-machine lane prefixes) while the run executes;
// -metrics-out writes one final Prometheus snapshot and -trace one shared
// Chrome trace covering every machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"caer/internal/caer"
	"caer/internal/fleet"
	"caer/internal/sched"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

func main() {
	machines := flag.Int("machines", 4, "cluster size; the first half are sensitive machines, the rest background")
	policy := flag.String("policy", "lp", "cross-machine placement policy: rr (round-robin), lp (least-pressure), packed")
	jobsCSV := flag.String("jobs", "lbm,lbm,povray,lbm", "comma-separated batch job mix the traffic driver cycles through")
	curveName := flag.String("curve", "diurnal", "open-loop arrival curve: constant, diurnal, burst")
	rate := flag.Float64("rate", 0.033, "mean arrivals per period at the curve's reference level")
	horizon := flag.Int("horizon", 4000, "periods over which arrivals are generated")
	sensitive := flag.String("sensitive", "mcf", "latency-critical open-loop service on the sensitive machines")
	background := flag.String("background", "namd", "insensitive open-loop service on the background machines")
	migrate := flag.Int("migrate", 0, "evaluate one cross-machine migration every N periods (0 = off)")
	usageThresh := flag.Float64("usage-thresh", 800, "per-machine rule-heuristic usage threshold (the §6.2 tuning frontier)")
	jobInstr := flag.Uint64("job-instr", 400_000, "instruction count for each batch job")
	svcInstr := flag.Uint64("svc-instr", 1_000_000, "instruction count for one service request")
	periods := flag.Int("periods", 400_000, "hard period bound on the run")
	seed := flag.Int64("seed", 1, "seed for the traffic driver and every process")
	workers := flag.Int("workers", 1, "per-machine domain-stepper worker pool size (bit-identical at any size)")
	quick := flag.Bool("quick", false, "shrink instructions 4x and raise the rate to match for a fast smoke run")
	serveAddr := flag.String("serve", "", "serve merged fleet telemetry (/metrics, /trace) on this address, e.g. :6060")
	metricsOut := flag.String("metrics-out", "", "write one final Prometheus snapshot of the whole fleet to this file")
	traceOut := flag.String("trace", "", "write the shared Chrome trace (per-machine lanes) to this file")
	flag.Parse()

	var pol fleet.Policy
	switch *policy {
	case "rr", "round-robin":
		pol = fleet.PolicyRoundRobin
	case "lp", "least-pressure", "ca":
		pol = fleet.PolicyLeastPressure
	case "packed":
		pol = fleet.PolicyPacked
	default:
		fatalf("unknown policy %q (want rr, lp, or packed)", *policy)
	}
	var curve fleet.Curve
	switch *curveName {
	case "constant":
		curve = fleet.CurveConstant
	case "diurnal":
		curve = fleet.CurveDiurnal
	case "burst":
		curve = fleet.CurveBurst
	default:
		fatalf("unknown curve %q (want constant, diurnal, or burst)", *curveName)
	}
	if *machines < 1 {
		fatalf("need at least one machine")
	}

	sens := mustProfile(*sensitive)
	back := mustProfile(*background)
	var mix []spec.Profile
	for _, n := range strings.Split(*jobsCSV, ",") {
		p := mustProfile(strings.TrimSpace(n))
		p.Exec.Instructions = *jobInstr
		mix = append(mix, p)
	}
	sens.Exec.Instructions = *svcInstr
	back.Exec.Instructions = *svcInstr
	traffic := fleet.Traffic{Curve: curve, Rate: *rate, Horizon: *horizon, Mix: mix}
	if *quick {
		// Scale-invariant shrink, as in the caer-bench fleet suite: every
		// job 4x shorter, arrivals 4x denser over a 4x shorter horizon.
		sens.Exec.Instructions /= 4
		back.Exec.Instructions /= 4
		for i := range mix {
			mix[i].Exec.Instructions /= 4
		}
		traffic.Rate *= 4
		traffic.Horizon /= 4
	}

	// Heterogeneous topology, as in the caer-bench fleet suite: sensitive
	// machines are small (4 cores over 2 LLC domains), background machines
	// big (8 cores over 2 domains), so placement — not per-machine response
	// — decides whether aggressors land next to the service.
	nSens := (*machines + 1) / 2
	specs := make([]fleet.MachineSpec, *machines)
	for k := range specs {
		svc := fleet.Service{Profile: sens, Core: 0, Relaunch: true}
		specs[k] = fleet.MachineSpec{Cores: 4, Domains: 2, Workers: *workers, Services: []fleet.Service{svc}}
		if k >= nSens {
			svc.Profile = back
			specs[k] = fleet.MachineSpec{Cores: 8, Domains: 2, Workers: *workers, Services: []fleet.Service{svc}}
		}
	}

	caerCfg := caer.DefaultConfig()
	caerCfg.UsageThresh = *usageThresh
	c := fleet.New(fleet.Config{
		Machines: specs,
		Sched: sched.Config{
			Policy:         sched.PolicyContentionAware,
			Heuristic:      caer.HeuristicRule,
			Caer:           caerCfg,
			PressureScale:  caer.DefaultConfig().UsageThresh,
			AdmitThreshold: 100,
		},
		Policy:        pol,
		Traffic:       traffic,
		Seed:          *seed,
		MigratePeriod: *migrate,
		MaxPeriods:    *periods,
	})

	if *serveAddr != "" {
		ln, err := c.ServeTelemetry(*serveAddr)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "[telemetry: merged fleet /metrics and /trace on %s]\n", *serveAddr)
	}

	fmt.Printf("caer-fleet: %d machines (%d x %s sensitive, %d x %s background), %s policy, %s traffic rate %.3f over %d periods\n\n",
		*machines, nSens, spec.ShortName(sens.Name),
		*machines-nSens, spec.ShortName(back.Name),
		pol, curve, traffic.Rate, traffic.Horizon)

	c.Run()
	rep := c.Report()
	if err := rep.Render(os.Stdout); err != nil {
		fatalf("render: %v", err)
	}
	lat := rep.MergedLatency(spec.ShortName(sens.Name))
	if lat.N() > 0 {
		fmt.Printf("fleet-wide %s QoS: %d requests, p50 %.0f p99 %.0f periods\n",
			spec.ShortName(sens.Name), lat.N(), lat.Quantile(0.5), lat.Quantile(0.99))
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatalf("create %s: %v", *metricsOut, err)
		}
		if err := c.WriteMetrics(f); err != nil {
			fatalf("write metrics: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("create %s: %v", *traceOut, err)
		}
		if err := telemetry.DefaultSpans.WriteChrome(f); err != nil {
			fatalf("write trace: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *traceOut)
	}
	if rep.Completed != rep.Arrivals {
		fatalf("fleet did not drain: %d of %d jobs completed within %d periods",
			rep.Completed, rep.Arrivals, *periods)
	}
}

func mustProfile(name string) spec.Profile {
	p, ok := spec.ByName(name)
	if !ok {
		fatalf("unknown benchmark %q", name)
	}
	return p
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caer-fleet: "+format+"\n", args...)
	os.Exit(1)
}
