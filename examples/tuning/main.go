// Tuning: explore the heuristic tuning space the paper reserves for future
// work (§6.2). The shutter's impact factor is the QoS "knob": it sets how
// much cross-core interference the latency-sensitive application will
// tolerate before the batch is throttled. The rule-based usage threshold
// plays the same role less directly.
//
// This example sweeps both knobs for one sensitive benchmark and prints
// the utilization-vs-interference frontier each heuristic traces out.
//
//	go run ./examples/tuning
package main

import (
	"fmt"

	"caer"
)

func main() {
	soplex, ok := caer.BenchmarkByName("soplex")
	if !ok {
		panic("soplex profile missing")
	}
	alone := caer.Run(caer.Scenario{Latency: soplex, Mode: caer.ModeAlone})
	colo := caer.Run(caer.Scenario{Latency: soplex, Mode: caer.ModeNativeColo})
	fmt.Printf("soplex + lbm: native co-location slowdown %.2fx\n\n", caer.Slowdown(colo, alone))

	fmt.Println("burst-shutter impact factor sweep (lower = stricter QoS):")
	fmt.Printf("  %-8s  %-10s  %-12s\n", "impact", "slowdown", "util gained")
	// Contention signals are often unambiguous (the burst average is several
	// times the steady average), so the interesting part of the knob's range
	// spans orders of magnitude.
	for _, impact := range []float64{0.05, 0.5, 2, 5, 10, 25, 100} {
		cfg := caer.DefaultConfig()
		cfg.ImpactFactor = impact
		r := caer.Run(caer.Scenario{
			Latency: soplex, Mode: caer.ModeCAER,
			Heuristic: caer.HeuristicShutter, Config: cfg,
		})
		fmt.Printf("  %-8.2f  %-10.3f  %.0f%%\n",
			impact, caer.Slowdown(r, alone), 100*caer.UtilizationGained(r))
	}

	fmt.Println("\nrule-based usage threshold sweep (lower = stricter QoS):")
	fmt.Printf("  %-8s  %-10s  %-12s\n", "thresh", "slowdown", "util gained")
	for _, thresh := range []float64{50, 150, 400, 800, 1600, 3200} {
		cfg := caer.DefaultConfig()
		cfg.UsageThresh = thresh
		r := caer.Run(caer.Scenario{
			Latency: soplex, Mode: caer.ModeCAER,
			Heuristic: caer.HeuristicRule, Config: cfg,
		})
		fmt.Printf("  %-8.0f  %-10.3f  %.0f%%\n",
			thresh, caer.Slowdown(r, alone), 100*caer.UtilizationGained(r))
	}
	fmt.Println("\nEach knob trades latency-app QoS against batch throughput;")
	fmt.Println("the shutter knob expresses the trade-off directly in units of")
	fmt.Println("tolerated miss-rate impact, which is why the paper calls it the")
	fmt.Println("more intuitive abstraction.")
}
