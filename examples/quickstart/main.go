// Quickstart: co-locate the paper's worst-case pair — mcf (latency-
// sensitive) and lbm (batch) — three ways, and see what CAER buys you.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"caer"
)

func main() {
	mcf, ok := caer.BenchmarkByName("mcf")
	if !ok {
		panic("mcf profile missing")
	}

	// 1. The safe-but-wasteful policy: run the latency-sensitive app alone.
	alone := caer.Run(caer.Scenario{Latency: mcf, Mode: caer.ModeAlone})

	// 2. Naive co-location: full utilization, unbounded interference.
	colo := caer.Run(caer.Scenario{Latency: mcf, Mode: caer.ModeNativeColo})

	// 3. CAER: detect contention online, throttle the batch only when it
	//    hurts.
	managed := caer.Run(caer.Scenario{
		Latency:   mcf,
		Mode:      caer.ModeCAER,
		Heuristic: caer.HeuristicRule,
	})

	fmt.Printf("mcf alone:        %5d periods  (baseline, 0%% extra utilization)\n", alone.Periods)
	fmt.Printf("mcf + lbm native: %5d periods  (%.2fx slowdown, 100%% extra utilization)\n",
		colo.Periods, caer.Slowdown(colo, alone))
	fmt.Printf("mcf + lbm CAER:   %5d periods  (%.2fx slowdown, %.0f%% extra utilization)\n",
		managed.Periods, caer.Slowdown(managed, alone), 100*caer.UtilizationGained(managed))
	fmt.Printf("\nCAER eliminated %.0f%% of the cross-core interference penalty\n",
		100*caer.InterferenceEliminated(managed, colo, alone))
	fmt.Printf("while the batch application still retired %d instructions.\n",
		managed.BatchInstructions)
}
