// Datacenter: the paper's motivating scenario. A web-search-like
// latency-sensitive service shares a four-core chip with batch analytics
// jobs (the Figure 4 design vision: two latency-sensitive applications, two
// batch applications, cooperating CAER layers).
//
// The search service is modelled as a custom workload: a hot in-memory
// index shard with scattered posting-list lookups that need a large slice
// of the shared cache. The analytics jobs are lbm-like scanners.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"

	"caer"
	"caer/internal/workload"
)

// newSearchService builds a web-search-like process: 60% of references hit
// a hot query-processing core, 40% scatter across an index shard that wants
// most of the shared cache.
func newSearchService(name string, base uint64, seed int64) *caer.Process {
	// The two shards are sized to coexist in the shared cache (2×2560 of
	// 8192 lines); the marginal contention comes from the analytics jobs,
	// which is the contention CAER can actually remove.
	gen := workload.NewHotCold(
		workload.NewUniform(base, 640, 0.05),        // query/scoring state
		workload.NewUniform(base+1<<22, 2560, 0.02), // index shard
		0.6)
	return caer.NewProcess(name,
		caer.ExecProfile{MemFraction: 0.35, BaseCPI: 0.8, Instructions: 2_500_000},
		gen, seed)
}

func newAnalyticsJob(name string, base uint64, seed int64) *caer.Process {
	// A log-scanning job: streams far more data than the cache holds.
	gen := workload.NewStream(base, 24576, 1, 0.25)
	return caer.NewProcess(name,
		caer.ExecProfile{MemFraction: 0.4, BaseCPI: 0.7}, // endless service
		gen, seed)
}

func run(managed bool) (periods uint64, batchInstr uint64, duty float64) {
	m := caer.NewMachine(caer.MachineConfig{Cores: 4})
	search1 := newSearchService("search-1", 0, 1)
	search2 := newSearchService("search-2", 1<<26, 2)

	if !managed {
		m.Bind(0, search1)
		m.Bind(1, search2)
		m.Bind(2, newAnalyticsJob("scan-1", 1<<27, 3))
		m.Bind(3, newAnalyticsJob("scan-2", 1<<28, 4))
		for !search1.Done() || !search2.Done() {
			m.RunPeriod()
		}
		return m.Periods(),
			m.Core(2).Process().Retired() + m.Core(3).Process().Retired(),
			(m.Core(2).Utilization() + m.Core(3).Utilization()) / 2
	}

	rt := caer.NewRuntime(m, caer.HeuristicRule, caer.DefaultConfig())
	rt.AddLatency("search-1", 0, search1)
	rt.AddLatency("search-2", 1, search2)
	rt.AddBatch("scan-1", 2, newAnalyticsJob("scan-1", 1<<27, 3))
	rt.AddBatch("scan-2", 3, newAnalyticsJob("scan-2", 1<<28, 4))
	rt.RunUntil(func() bool { return search1.Done() && search2.Done() }, 1_000_000)
	var instr uint64
	for _, p := range rt.BatchProcesses() {
		instr += p.Retired()
	}
	return m.Periods(), instr, (m.Core(2).Utilization() + m.Core(3).Utilization()) / 2
}

func main() {
	// Baseline: the two search shards alone on the chip (disallowed
	// co-location, the common datacenter policy).
	m := caer.NewMachine(caer.MachineConfig{Cores: 4})
	s1, s2 := newSearchService("search-1", 0, 1), newSearchService("search-2", 1<<26, 2)
	m.Bind(0, s1)
	m.Bind(1, s2)
	for !s1.Done() || !s2.Done() {
		m.RunPeriod()
	}
	alonePeriods := m.Periods()

	nativePeriods, nativeInstr, nativeDuty := run(false)
	caerPeriods, caerInstr, caerDuty := run(true)

	fmt.Println("four-core chip: 2x web-search shards + 2x batch analytics")
	fmt.Printf("  search alone (no co-location):  %5d periods, analytics idle\n", alonePeriods)
	fmt.Printf("  native co-location:             %5d periods (%.2fx search slowdown), analytics %d instr (duty %.0f%%)\n",
		nativePeriods, float64(nativePeriods)/float64(alonePeriods), nativeInstr, nativeDuty*100)
	fmt.Printf("  CAER co-location (rule-based):  %5d periods (%.2fx search slowdown), analytics %d instr (duty %.0f%%)\n",
		caerPeriods, float64(caerPeriods)/float64(alonePeriods), caerInstr, caerDuty*100)
}
