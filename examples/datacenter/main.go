// Datacenter: the paper's motivating scenario at fleet scale. The abstract
// opens with latency-sensitive applications spread over thousands of
// servers whose owners refuse co-location; fleet mode (DESIGN.md §14) is
// that setting in miniature. A four-machine cluster hosts web-search-like
// shard services on two small front-end machines and an insensitive
// aggregator on two big back-end machines, while a diurnal stream of batch
// analytics jobs arrives at the cluster's admission queue. The decision
// that shapes the search tail is *which machine* each job lands on: blind
// round-robin placement rotates analytics onto the search machines at
// peak, least-pressure placement reads every machine's classifier summary
// and steers them to the back-ends.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"

	"caer/internal/caer"
	"caer/internal/fleet"
	"caer/internal/machine"
	"caer/internal/sched"
	"caer/internal/spec"
	"caer/internal/workload"
)

// searchProfile is a web-search-like service request: 30% of references
// hit a hot query-processing core, 70% scatter across an index shard that
// needs most of the shared L3 — the paper's Sensitive class, so an
// analytics scanner beside it evicts exactly the lines the next posting
// lookup needs.
var searchProfile = spec.Profile{
	Name:  "search",
	Class: spec.Sensitive,
	Exec:  machine.ExecProfile{MemFraction: 0.45, BaseCPI: 0.8, Instructions: 250_000},
	NewGen: func(base uint64, seed int64) workload.Generator {
		return workload.NewHotCold(
			workload.NewUniform(base, 640, 0.1),         // query/scoring state
			workload.NewUniform(base+1<<22, 5120, 0.05), // index shard
			0.3)
	},
}

// aggregatorProfile is the back-end machines' resident service: a result
// aggregator whose working set fits the private caches, so analytics
// running beside it costs nearly nothing — the capacity the fleet placer
// should exploit.
var aggregatorProfile = spec.Profile{
	Name:  "aggregator",
	Class: spec.Insensitive,
	Exec:  machine.ExecProfile{MemFraction: 0.25, BaseCPI: 0.8, Instructions: 250_000},
	NewGen: func(base uint64, seed int64) workload.Generator {
		return workload.NewUniform(base, 512, 0.1)
	},
}

// analyticsProfile is a log-scanning batch job: streams far more data than
// any cache holds, the lbm-like adversary of Figure 1.
var analyticsProfile = spec.Profile{
	Name:  "analytics",
	Class: spec.Sensitive,
	Exec:  machine.ExecProfile{MemFraction: 0.4, BaseCPI: 0.7, Instructions: 100_000},
	NewGen: func(base uint64, seed int64) workload.Generator {
		return workload.NewStream(base, 24576, 1, 0.25)
	},
}

// run executes the same cluster and traffic schedule under one placement
// policy and returns the report plus the merged search QoS distribution.
func run(policy fleet.Policy) (fleet.Report, float64, float64) {
	// Two small front-end machines (4 cores, 2 LLC domains) pin a search
	// shard each; two big back-end machines (8 cores) pin the aggregator.
	specs := make([]fleet.MachineSpec, 4)
	for k := range specs {
		svc := fleet.Service{Profile: searchProfile, Core: 0, Relaunch: true}
		specs[k] = fleet.MachineSpec{Cores: 4, Domains: 2, Services: []fleet.Service{svc}}
		if k >= 2 {
			svc.Profile = aggregatorProfile
			specs[k] = fleet.MachineSpec{Cores: 8, Domains: 2, Services: []fleet.Service{svc}}
		}
	}

	// Per-machine engines sit at the batch-favouring end of the rule
	// tuning frontier and admission is capacity-driven (as in the
	// caer-bench fleet suite): the search tail is decided by placement,
	// which is the layer this example demonstrates.
	caerCfg := caer.DefaultConfig()
	caerCfg.UsageThresh = 800
	c := fleet.New(fleet.Config{
		Machines: specs,
		Sched: sched.Config{
			Policy:         sched.PolicyContentionAware,
			Heuristic:      caer.HeuristicRule,
			Caer:           caerCfg,
			PressureScale:  caer.DefaultConfig().UsageThresh,
			AdmitThreshold: 100,
		},
		Policy: policy,
		Traffic: fleet.Traffic{
			Curve:   fleet.CurveDiurnal,
			Rate:    0.132,
			Horizon: 1000,
			Mix:     []spec.Profile{analyticsProfile, analyticsProfile, analyticsProfile},
		},
		Seed:       1,
		MaxPeriods: 100_000,
	})
	c.Run()
	rep := c.Report()
	lat := rep.MergedLatency("search")
	return rep, lat.Quantile(0.5), lat.Quantile(0.99)
}

func main() {
	fmt.Println("four-machine cluster: 2x front-end (search shard) + 2x back-end (aggregator)")
	fmt.Println("diurnal analytics traffic through the fleet admission queue")
	fmt.Println()
	for _, pol := range []fleet.Policy{fleet.PolicyRoundRobin, fleet.PolicyLeastPressure} {
		rep, p50, p99 := run(pol)
		perMachine := make([]int, 0, len(rep.Nodes))
		for _, n := range rep.Nodes {
			perMachine = append(perMachine, n.Dispatches)
		}
		fmt.Printf("  %-14s %d/%d jobs completed (%.1f jobs/kperiod), search p50 %.0f p99 %.0f periods, dispatches %v\n",
			pol, rep.Completed, rep.Arrivals, rep.Throughput(), p50, p99, perMachine)
	}
	fmt.Println()
	fmt.Println("same jobs, same arrival schedule: least-pressure placement keeps the")
	fmt.Println("analytics scanners on the back-end machines and the search tail flat.")
}
