// Heuristics: compare every detection/response pairing — burst-shutter,
// rule-based, the random baseline, the adaptive red-light/green-light
// extension, and the DVFS-style response — on the same pair of workloads,
// including a tricky one: libquantum, a pure streamer whose per-period miss
// count *drops* under contention (it simply runs slower), inverting the
// shutter's signal.
//
//	go run ./examples/heuristics
package main

import (
	"fmt"

	"caer"
)

type variant struct {
	name     string
	scenario func(lat caer.Benchmark) caer.Scenario
}

func variants() []variant {
	return []variant{
		{"native colo", func(l caer.Benchmark) caer.Scenario {
			return caer.Scenario{Latency: l, Mode: caer.ModeNativeColo}
		}},
		{"shutter", func(l caer.Benchmark) caer.Scenario {
			return caer.Scenario{Latency: l, Mode: caer.ModeCAER, Heuristic: caer.HeuristicShutter}
		}},
		{"shutter+adaptive", func(l caer.Benchmark) caer.Scenario {
			cfg := caer.DefaultConfig()
			cfg.AdaptiveResponse = true
			return caer.Scenario{Latency: l, Mode: caer.ModeCAER, Heuristic: caer.HeuristicShutter, Config: cfg}
		}},
		{"rule", func(l caer.Benchmark) caer.Scenario {
			return caer.Scenario{Latency: l, Mode: caer.ModeCAER, Heuristic: caer.HeuristicRule}
		}},
		{"rule+dvfs/4", func(l caer.Benchmark) caer.Scenario {
			return caer.Scenario{Latency: l, Mode: caer.ModeCAER, Heuristic: caer.HeuristicRule,
				Actuator: caer.DVFSActuator(4)}
		}},
		{"hybrid", func(l caer.Benchmark) caer.Scenario {
			return caer.Scenario{Latency: l, Mode: caer.ModeCAER, Heuristic: caer.HeuristicHybrid}
		}},
		{"random", func(l caer.Benchmark) caer.Scenario {
			return caer.Scenario{Latency: l, Mode: caer.ModeCAER, Heuristic: caer.HeuristicRandom}
		}},
	}
}

func main() {
	for _, benchName := range []string{"mcf", "libquantum", "namd"} {
		lat, ok := caer.BenchmarkByName(benchName)
		if !ok {
			panic("missing profile " + benchName)
		}
		alone := caer.Run(caer.Scenario{Latency: lat, Mode: caer.ModeAlone})
		fmt.Printf("%s vs lbm (alone: %d periods)\n", lat.Name, alone.Periods)
		fmt.Printf("  %-18s %-10s %-12s %s\n", "variant", "slowdown", "util gained", "verdicts (+/-)")
		for _, v := range variants() {
			r := caer.Run(v.scenario(lat))
			verdicts := "-"
			if r.CPositive+r.CNegative > 0 {
				verdicts = fmt.Sprintf("%d/%d", r.CPositive, r.CNegative)
			}
			fmt.Printf("  %-18s %-10.3f %-12s %s\n",
				v.name, caer.Slowdown(r, alone),
				fmt.Sprintf("%.0f%%", 100*caer.UtilizationGained(r)), verdicts)
		}
		fmt.Println()
	}
	fmt.Println("Note libquantum: its misses stay high regardless of the batch, so")
	fmt.Println("the rule-based heuristic throttles hard (misses are 'heavy' on both")
	fmt.Println("sides) while the shutter sees little burst/steady delta — the two")
	fmt.Println("heuristics genuinely disagree, as the paper's §6.4 analysis expects.")
	fmt.Println()
	fmt.Println("The hybrid extension gets the best of both: on quiet pairs (namd) its")
	fmt.Println("rule gate skips the shutter's probing cost, and on intrinsic streamers")
	fmt.Println("(libquantum) its confirmation probe refutes the rule's false positive.")
}
