package caer

import (
	"testing"

	"caer/internal/workload"
)

// shrunk returns a benchmark with a reduced instruction count for fast
// facade tests.
func shrunk(t *testing.T, name string, instructions uint64) Benchmark {
	t.Helper()
	b, ok := BenchmarkByName(name)
	if !ok {
		t.Fatalf("benchmark %q missing", name)
	}
	b.Exec.Instructions = instructions
	return b
}

func TestFacadeBenchmarkRegistry(t *testing.T) {
	if got := len(Benchmarks()); got != 21 {
		t.Errorf("Benchmarks() = %d, want 21", got)
	}
	if got := len(BenchmarkNames()); got != 21 {
		t.Errorf("BenchmarkNames() = %d, want 21", got)
	}
	if LBM().Name != "470.lbm" {
		t.Errorf("LBM() = %q", LBM().Name)
	}
	if _, ok := BenchmarkByName("mcf"); !ok {
		t.Error("BenchmarkByName(mcf) failed")
	}
	classes := map[Sensitivity]bool{}
	for _, b := range Benchmarks() {
		classes[b.Class] = true
	}
	for _, c := range []Sensitivity{Insensitive, Moderate, Sensitive} {
		if !classes[c] {
			t.Errorf("no benchmark in class %v", c)
		}
	}
}

func TestFacadeEndToEndScenario(t *testing.T) {
	mcf := shrunk(t, "mcf", 300_000)
	alone := Run(Scenario{Latency: mcf, Mode: ModeAlone, Seed: 1})
	colo := Run(Scenario{Latency: mcf, Mode: ModeNativeColo, Seed: 1})
	managed := Run(Scenario{Latency: mcf, Mode: ModeCAER, Heuristic: HeuristicRule, Seed: 1})

	if !(alone.Periods < managed.Periods && managed.Periods < colo.Periods) {
		t.Errorf("ordering violated: alone %d, caer %d, colo %d",
			alone.Periods, managed.Periods, colo.Periods)
	}
	if e := InterferenceEliminated(managed, colo, alone); e <= 0 || e > 1.001 {
		t.Errorf("interference eliminated = %.3f", e)
	}
	if o := Overhead(managed, alone); o < 0 {
		t.Errorf("overhead = %.3f", o)
	}
	if g := UtilizationGained(managed); g <= 0 {
		t.Errorf("utilization gained = %.3f", g)
	}
	if s := Slowdown(colo, alone); s <= 1 {
		t.Errorf("colo slowdown = %.3f", s)
	}
}

func TestFacadeManualRuntimeWiring(t *testing.T) {
	// The quickstart flow from the package docs, assembled by hand.
	m := NewMachine(MachineConfig{Cores: 2})
	rt := NewRuntime(m, HeuristicShutter, DefaultConfig())
	lat := shrunk(t, "soplex", 200_000).NewProcess(0, 1)
	rt.AddLatency("soplex", 0, lat)
	rt.AddBatch("lbm", 1, LBM().Batch().NewProcess(1<<28, 2))
	n := rt.RunUntil(lat.Done, 100_000)
	if !lat.Done() || n == 0 {
		t.Fatalf("runtime did not complete the latency app (ran %d periods)", n)
	}
	if len(rt.Engines()) != 1 {
		t.Error("engine missing")
	}
}

func TestFacadeCustomWorkload(t *testing.T) {
	// Users can define their own applications from generator primitives.
	gen := workload.NewHotCold(
		workload.NewUniform(0, 256, 0.1),
		workload.NewStream(1<<20, 10000, 1, 0.2),
		0.7)
	proc := NewProcess("custom", ExecProfile{MemFraction: 0.3, BaseCPI: 1, Instructions: 100_000}, gen, 9)
	m := NewMachine(MachineConfig{Cores: 1})
	m.Bind(0, proc)
	for !proc.Done() {
		m.RunPeriod()
	}
	if proc.Retired() != 100_000 {
		t.Errorf("retired = %d", proc.Retired())
	}
}

func TestFacadeDetectorConstructors(t *testing.T) {
	cfg := DefaultConfig()
	for _, d := range []Detector{NewShutterDetector(cfg), NewRuleDetector(cfg), NewRandomDetector(cfg)} {
		if d.Name() == "" {
			t.Error("detector has empty name")
		}
	}
	if DVFSActuator(2) == nil {
		t.Error("DVFSActuator returned nil")
	}
}

func TestFacadeHierarchyConfig(t *testing.T) {
	cfg := DefaultHierarchyConfig(4)
	if cfg.Cores != 4 || cfg.L3Ways != 16 {
		t.Errorf("unexpected hierarchy config: %+v", cfg)
	}
}

func TestFacadeSuite(t *testing.T) {
	s := NewSuite()
	s.Benchmarks = []Benchmark{shrunk(t, "namd", 400_000), shrunk(t, "omnetpp", 200_000)}
	f := s.Figure1()
	if len(f.Benchmarks) != 2 {
		t.Fatalf("figure over %d benchmarks", len(f.Benchmarks))
	}
	if f.Slowdowns[1] <= f.Slowdowns[0] {
		t.Errorf("omnetpp (%.3f) should out-suffer namd (%.3f)", f.Slowdowns[1], f.Slowdowns[0])
	}
}
