package caer

// Benchmark harness: one testing.B benchmark per data figure in the
// paper's evaluation (Figures 1, 2, 3, 6, 7, 8, 9, 10), plus ablation
// benchmarks for the design choices DESIGN.md calls out (static cache
// partitioning, adaptive response, DVFS response) and micro-benchmarks of
// the substrate's hot paths.
//
// Figure benchmarks run the corresponding experiment end to end on
// 8x-shrunken benchmark lengths (the shapes are unchanged; full-length
// numbers are recorded in EXPERIMENTS.md via cmd/caer-bench) and report
// the figure's headline metric through b.ReportMetric.

import (
	"math/rand"
	"testing"

	icaer "caer/internal/caer"
	"caer/internal/experiments"
	"caer/internal/machine"
	"caer/internal/mem"
	"caer/internal/runner"
	"caer/internal/spec"
	"caer/internal/workload"
)

// benchSuite returns a fresh experiment suite over all 21 benchmarks at
// 1/8 length.
func benchSuite() *experiments.Suite {
	s := experiments.NewSuite()
	s.Seed = 1
	for _, p := range spec.All() {
		p.Exec.Instructions /= 8
		s.Benchmarks = append(s.Benchmarks, p)
	}
	return s
}

func BenchmarkFigure1ColocationPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().Figure1()
		b.ReportMetric(f.Mean, "mean-slowdown")
	}
}

func BenchmarkFigure2MissIncrease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().Figure2()
		var alone, colo float64
		for j := range f.Benchmarks {
			alone += f.MissesAlone[j]
			colo += f.MissesColo[j]
		}
		b.ReportMetric(colo/alone, "miss-increase")
	}
}

func BenchmarkFigure3PhaseCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().Figure3(600)
		var c float64
		for _, srs := range f.Series {
			c += srs.Correlation
		}
		b.ReportMetric(c/float64(len(f.Series)), "mean-correlation")
	}
}

func BenchmarkFigure6CAERPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().Figure6()
		b.ReportMetric(f.MeanColo, "colo-slowdown")
		b.ReportMetric(f.MeanShutter, "shutter-slowdown")
		b.ReportMetric(f.MeanRule, "rule-slowdown")
	}
}

func BenchmarkFigure7UtilizationGained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().Figure7()
		b.ReportMetric(f.MeanShutter*100, "shutter-util-%")
		b.ReportMetric(f.MeanRule*100, "rule-util-%")
	}
}

func BenchmarkFigure8InterferenceEliminated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().Figure8()
		b.ReportMetric(f.MeanShutter*100, "shutter-eliminated-%")
		b.ReportMetric(f.MeanRule*100, "rule-eliminated-%")
	}
}

func BenchmarkFigure9AccuracyMostSensitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().FigureAccuracy(true, 6)
		b.ReportMetric(f.MeanShutter*100, "shutter-A-%")
		b.ReportMetric(f.MeanRule*100, "rule-A-%")
	}
}

func BenchmarkFigure10AccuracyLeastSensitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchSuite().FigureAccuracy(false, 6)
		b.ReportMetric(f.MeanShutter*100, "shutter-A-%")
		b.ReportMetric(f.MeanRule*100, "rule-A-%")
	}
}

// benchScenario runs mcf-vs-lbm (1/8 length) under one scenario variant.
func benchScenario(b *testing.B, mutate func(*runner.Scenario)) {
	b.Helper()
	mcf, _ := spec.ByName("mcf")
	mcf.Exec.Instructions /= 8
	for i := 0; i < b.N; i++ {
		s := runner.Scenario{Latency: mcf, Seed: 1}
		mutate(&s)
		r := runner.Run(s)
		alone := runner.Run(runner.Scenario{Latency: mcf, Mode: runner.ModeAlone, Seed: 1})
		b.ReportMetric(runner.Slowdown(r, alone), "slowdown")
		if s.Mode != runner.ModeAlone {
			b.ReportMetric(runner.UtilizationGained(r)*100, "util-gained-%")
		}
	}
}

// Ablation: static L3 way-partitioning (hardware cache QoS) versus CAER's
// software throttling, on the worst pair.
func BenchmarkAblationPartitionedL3(b *testing.B) {
	benchScenario(b, func(s *runner.Scenario) {
		s.Mode = runner.ModeNativeColo
		s.PartitionWays = 12
	})
}

// Ablation: fixed-length red-light/green-light versus the adaptive variant.
func BenchmarkAblationAdaptiveResponse(b *testing.B) {
	benchScenario(b, func(s *runner.Scenario) {
		s.Mode = runner.ModeCAER
		s.Heuristic = icaer.HeuristicShutter
		cfg := icaer.DefaultConfig()
		cfg.AdaptiveResponse = true
		s.Config = cfg
	})
}

// Ablation: the hybrid rule-gate + shutter-confirm extension heuristic.
func BenchmarkAblationHybridHeuristic(b *testing.B) {
	benchScenario(b, func(s *runner.Scenario) {
		s.Mode = runner.ModeCAER
		s.Heuristic = icaer.HeuristicHybrid
	})
}

// Ablation: DVFS-style down-clocking instead of pausing.
func BenchmarkAblationDVFSResponse(b *testing.B) {
	benchScenario(b, func(s *runner.Scenario) {
		s.Mode = runner.ModeCAER
		s.Heuristic = icaer.HeuristicRule
		s.Actuator = icaer.DVFSActuator(4)
	})
}

// Micro-benchmarks of the substrate's hot paths.

func BenchmarkCacheAccess(b *testing.B) {
	c := mem.NewCache(mem.Config{Name: "bench", Sets: 512, Ways: 16})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(12288))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&4095]
		if !c.Lookup(a, false) {
			c.Insert(a, 0, false)
		}
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig(2))
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(12288))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i&1, addrs[i&4095], false, uint64(i))
	}
}

func BenchmarkMachinePeriod(b *testing.B) {
	m := machine.New(machine.Config{Cores: 2})
	mcf, _ := spec.ByName("mcf")
	m.Bind(0, mcf.Batch().NewProcess(0, 1))
	m.Bind(1, spec.LBM().Batch().NewProcess(1<<28, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunPeriod()
	}
}

func BenchmarkShutterDetectorStep(b *testing.B) {
	d := icaer.NewShutterDetector(icaer.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step(float64(i&255), float64((i*7)&255))
	}
}

func BenchmarkRuleDetectorStep(b *testing.B) {
	d := icaer.NewRuleDetector(icaer.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step(float64(i&255), float64((i*7)&255))
	}
}

func BenchmarkWorkloadGenerators(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gens := map[string]workload.Generator{
		"stream":  workload.NewStream(0, 8192, 1, 0.3),
		"uniform": workload.NewUniform(0, 8192, 0.3),
		"chase":   workload.NewPointerChase(0, 8192, 1, 0.3),
		"hotcold": workload.NewHotCold(workload.NewUniform(0, 512, 0), workload.NewUniform(1<<20, 8192, 0), 0.9),
	}
	for name, g := range gens {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Next(rng)
			}
		})
	}
}
