module caer

go 1.22
