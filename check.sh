#!/bin/sh
# Tier-2 verification gate: build, standard vet, the repo-specific caer-vet
# static analysis suite, and the race-enabled test run. CI runs exactly
# this; `make check` is an alias.
set -eux

go build ./...
go vet ./...
go run ./cmd/caer-vet ./...
go test -race ./...
# Chaos gate: the fault-injection regimes (DESIGN.md §8) in short mode —
# every fault class must fail open under every heuristic.
go run ./cmd/caer-bench -chaos -quick > /dev/null
# Scheduler gate: the placement regimes (DESIGN.md §9) in short mode —
# contention-aware placement must beat round-robin at equal throughput
# (asserted by the experiments suite test; this exercises the artifact path).
go run ./cmd/caer-bench -sched -quick > /dev/null
rm -f BENCH_sched.json
