#!/bin/sh
# Tier-2 verification gate: build, standard vet, the repo-specific caer-vet
# static analysis suite, and the race-enabled test run. CI runs exactly
# this; `make check` is an alias.
set -eux

go build ./...
go vet ./...
# caer-vet with suppression hygiene on (stale //caer:allow comments are
# findings in CI) and a wall-clock budget: the analysis suite must stay
# cheap enough to run on every push (CAER_VET_BUDGET seconds, default 120).
vet_start=$(date +%s)
go run ./cmd/caer-vet -unused-suppressions ./...
vet_elapsed=$(( $(date +%s) - vet_start ))
echo "caer-vet runtime: ${vet_elapsed}s (budget ${CAER_VET_BUDGET:-120}s)"
[ "$vet_elapsed" -le "${CAER_VET_BUDGET:-120}" ] || {
    echo "caer-vet budget: ${vet_elapsed}s exceeds CAER_VET_BUDGET=${CAER_VET_BUDGET:-120}s" >&2; exit 1; }
go test -race -coverprofile=coverage.out ./...
# Coverage ratchet: total statement coverage must not fall below
# CAER_COVERAGE_MIN (default 80, one point under the measured baseline —
# raise it as coverage grows, never lower it to absorb a regression).
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
awk -v t="$total" -v min="${CAER_COVERAGE_MIN:-80}" 'BEGIN { exit !(t+0 >= min+0) }' || {
    echo "coverage gate: total $total% below CAER_COVERAGE_MIN=${CAER_COVERAGE_MIN:-80}%" >&2; exit 1; }
# Fuzz smoke: run each parser fuzz target briefly so the checked-in seed
# corpus and any new corpus entries actually execute against the invariants
# (go's fuzzer accepts one target per invocation).
go test -run='^$' -fuzz='^FuzzParseText$' -fuzztime=10s ./internal/telemetry
go test -run='^$' -fuzz='^FuzzParseChromeTrace$' -fuzztime=10s ./internal/trace
# Chaos gate: the fault-injection regimes (DESIGN.md §8) in short mode —
# every fault class must fail open under every heuristic.
go run ./cmd/caer-bench -chaos -quick > /dev/null
# Perf gate: the performance baseline (DESIGN.md §11) in short mode — the
# suite exits non-zero if the parallel domain stepper's results are not
# byte-identical to the serial run's (the determinism contract).
go run ./cmd/caer-bench -perf -quick > /dev/null
rm -f BENCH_perf.json
# Sampling gate: the detection-latency-vs-overhead sweep (DESIGN.md §13)
# in short mode — the event-driven modes must flag every contention burst
# the poller flags, with no false flags, at strictly fewer probes.
go run ./cmd/caer-bench -sampling -quick > /dev/null
rm -f BENCH_sampling.json
# Scheduler gate: the placement regimes (DESIGN.md §9) in short mode —
# contention-aware placement must beat round-robin at equal throughput
# (asserted by the experiments suite test; this exercises the artifact path).
# -telemetry-out doubles as the telemetry smoke: the run must leave a
# Prometheus snapshot whose core metric families are present and non-empty.
go run ./cmd/caer-bench -sched -quick -telemetry-out TELEMETRY_snapshot.txt > /dev/null
rm -f BENCH_sched.json
# Fleet gate: the cluster-level placement regimes (DESIGN.md §14) in short
# mode — least-pressure cross-machine placement must strictly beat
# round-robin on the sensitive service's p99 request latency at equal
# admitted throughput, and the BENCH_fleet.json artifact must be written.
go run ./cmd/caer-bench -fleet -quick > /dev/null
test -s BENCH_fleet.json
rm -f BENCH_fleet.json
for fam in caer_pmu_reads_total caer_comm_publishes_total \
           caer_engine_ticks_total caer_engine_verdicts_total \
           caer_sched_admissions_total caer_telemetry_ops_total; do
    grep -q "^$fam" TELEMETRY_snapshot.txt || {
        echo "telemetry smoke: metric family $fam missing" >&2; exit 1; }
    awk -v fam="$fam" '$1 ~ "^"fam"($|{)" { sum += $NF } END { exit !(sum > 0) }' \
        TELEMETRY_snapshot.txt || {
        echo "telemetry smoke: metric family $fam is empty" >&2; exit 1; }
done
rm -f TELEMETRY_snapshot.txt
