#!/bin/sh
# Tier-2 verification gate: build, standard vet, the repo-specific caer-vet
# static analysis suite, and the race-enabled test run. CI runs exactly
# this; `make check` is an alias.
set -eux

go build ./...
go vet ./...
# caer-vet with suppression hygiene on (stale //caer:allow comments are
# findings in CI) and a wall-clock budget: the analysis suite must stay
# cheap enough to run on every push (CAER_VET_BUDGET seconds, default 120).
vet_start=$(date +%s)
go run ./cmd/caer-vet -unused-suppressions ./...
vet_elapsed=$(( $(date +%s) - vet_start ))
echo "caer-vet runtime: ${vet_elapsed}s (budget ${CAER_VET_BUDGET:-120}s)"
[ "$vet_elapsed" -le "${CAER_VET_BUDGET:-120}" ] || {
    echo "caer-vet budget: ${vet_elapsed}s exceeds CAER_VET_BUDGET=${CAER_VET_BUDGET:-120}s" >&2; exit 1; }
# -timeout: the experiments race suite (regime suites + SLO battery) runs
# past the 600s per-binary default.
go test -race -timeout 30m -coverprofile=coverage.out ./...
# Coverage ratchet: total statement coverage must not fall below
# CAER_COVERAGE_MIN (default 80.3, one point under the measured baseline —
# raise it as coverage grows, never lower it to absorb a regression).
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
awk -v t="$total" -v min="${CAER_COVERAGE_MIN:-80.3}" 'BEGIN { exit !(t+0 >= min+0) }' || {
    echo "coverage gate: total $total% below CAER_COVERAGE_MIN=${CAER_COVERAGE_MIN:-80.3}%" >&2; exit 1; }
# Fuzz smoke: run each parser fuzz target briefly so the checked-in seed
# corpus and any new corpus entries actually execute against the invariants
# (go's fuzzer accepts one target per invocation).
go test -run='^$' -fuzz='^FuzzParseText$' -fuzztime=10s ./internal/telemetry
go test -run='^$' -fuzz='^FuzzParseSeries$' -fuzztime=10s ./internal/telemetry
go test -run='^$' -fuzz='^FuzzParseChromeTrace$' -fuzztime=10s ./internal/trace
# Resize-path fuzz smoke: random partition op sequences (lookups, fills,
# orphan/invalidate resizes, back-invalidations) against the model checker
# in cache_test — fills stay inside the owner's mask, counts balance, and
# every resident line stays hittable.
go test -run='^$' -fuzz='^FuzzCachePartition$' -fuzztime=10s ./internal/mem
# Chaos gate: the fault-injection regimes (DESIGN.md §8) in short mode —
# every fault class must fail open under every heuristic.
go run ./cmd/caer-bench -chaos -quick > /dev/null
# Perf gate: the performance baseline (DESIGN.md §11) in short mode — the
# suite exits non-zero if the parallel domain stepper's results are not
# byte-identical to the serial run's (the determinism contract).
go run ./cmd/caer-bench -perf -quick > /dev/null
rm -f BENCH_perf.json
# Sampling gate: the detection-latency-vs-overhead sweep (DESIGN.md §13)
# in short mode — the event-driven modes must flag every contention burst
# the poller flags, with no false flags, at strictly fewer probes.
go run ./cmd/caer-bench -sampling -quick > /dev/null
rm -f BENCH_sampling.json
# Scheduler gate: the placement regimes (DESIGN.md §9) in short mode —
# contention-aware placement must beat round-robin at equal throughput
# (asserted by the experiments suite test; this exercises the artifact path).
# -telemetry-out doubles as the telemetry smoke: the run must leave a
# Prometheus snapshot whose core metric families are present and non-empty.
go run ./cmd/caer-bench -sched -quick -telemetry-out TELEMETRY_snapshot.txt > /dev/null
rm -f BENCH_sched.json
# Fleet gate: the cluster-level placement regimes (DESIGN.md §14) in short
# mode — least-pressure cross-machine placement must strictly beat
# round-robin on the sensitive service's p99 request latency at equal
# admitted throughput, and the BENCH_fleet.json artifact must be written.
go run ./cmd/caer-bench -fleet -quick > /dev/null
test -s BENCH_fleet.json
rm -f BENCH_fleet.json
# Partition gate: the cache-partitioning response regimes (DESIGN.md §16)
# in short mode — way-partitioning must strictly beat pure throttling on
# the latency app's QoS at equal admitted throughput with a no-later batch
# makespan, and the BENCH_partition.json artifact must be byte-identical
# across domain-stepper worker counts (the determinism contract).
go run ./cmd/caer-bench -partition -quick -workers 1 > /dev/null
test -s BENCH_partition.json
mv BENCH_partition.json BENCH_partition.w1.json
go run ./cmd/caer-bench -partition -quick -workers 4 > /dev/null
cmp BENCH_partition.json BENCH_partition.w1.json
rm -f BENCH_partition.json BENCH_partition.w1.json
# SLO gate (DESIGN.md §15) in short mode: metrics-fed placement must match
# or beat least-pressure on the sensitive p99 at equal throughput, a total
# scrape outage must degrade to least-pressure byte-for-byte, and the alert
# battery's seeded monitor outages must each fire exactly one burn-rate
# alert with zero false positives. The run leaves BENCH_slo.json plus the
# doctor bundle (SLO_*.json).
go run ./cmd/caer-bench -slo -quick > /dev/null
test -s BENCH_slo.json
# Doctor smoke: the offline replay over the bundle must name the seeded
# violation class and count all three episodes.
go run ./cmd/caer-doctor -dir . > DOCTOR_out.txt
grep -q "degraded-budget firing" DOCTOR_out.txt || {
    echo "doctor smoke: seeded degraded-budget violation not named" >&2; exit 1; }
grep -q "diagnosis: 3 SLO violation" DOCTOR_out.txt || {
    echo "doctor smoke: expected 3 diagnosed violations" >&2; exit 1; }
rm -f BENCH_slo.json SLO_series.json SLO_events.json SLO_trace.json \
      SLO_objectives.json DOCTOR_out.txt
for fam in caer_pmu_reads_total caer_comm_publishes_total \
           caer_engine_ticks_total caer_engine_verdicts_total \
           caer_sched_admissions_total caer_telemetry_ops_total; do
    grep -q "^$fam" TELEMETRY_snapshot.txt || {
        echo "telemetry smoke: metric family $fam missing" >&2; exit 1; }
    awk -v fam="$fam" '$1 ~ "^"fam"($|{)" { sum += $NF } END { exit !(sum > 0) }' \
        TELEMETRY_snapshot.txt || {
        echo "telemetry smoke: metric family $fam is empty" >&2; exit 1; }
done
rm -f TELEMETRY_snapshot.txt
