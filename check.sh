#!/bin/sh
# Tier-2 verification gate: build, standard vet, the repo-specific caer-vet
# static analysis suite, and the race-enabled test run. CI runs exactly
# this; `make check` is an alias.
set -eux

go build ./...
go vet ./...
go run ./cmd/caer-vet ./...
go test -race ./...
# Chaos gate: the fault-injection regimes (DESIGN.md §8) in short mode —
# every fault class must fail open under every heuristic.
go run ./cmd/caer-bench -chaos -quick > /dev/null
# Scheduler gate: the placement regimes (DESIGN.md §9) in short mode —
# contention-aware placement must beat round-robin at equal throughput
# (asserted by the experiments suite test; this exercises the artifact path).
# -telemetry-out doubles as the telemetry smoke: the run must leave a
# Prometheus snapshot whose core metric families are present and non-empty.
go run ./cmd/caer-bench -sched -quick -telemetry-out TELEMETRY_snapshot.txt > /dev/null
rm -f BENCH_sched.json
for fam in caer_pmu_reads_total caer_comm_publishes_total \
           caer_engine_ticks_total caer_engine_verdicts_total \
           caer_sched_admissions_total caer_telemetry_ops_total; do
    grep -q "^$fam" TELEMETRY_snapshot.txt || {
        echo "telemetry smoke: metric family $fam missing" >&2; exit 1; }
    awk -v fam="$fam" '$1 ~ "^"fam"($|{)" { sum += $NF } END { exit !(sum > 0) }' \
        TELEMETRY_snapshot.txt || {
        echo "telemetry smoke: metric family $fam is empty" >&2; exit 1; }
done
rm -f TELEMETRY_snapshot.txt
